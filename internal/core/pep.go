package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/internal/keys"
	"github.com/hep-on-hpc/hepnos-go/internal/mpi"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/serde"
)

// PEP MPI tags (user tag space; applications should avoid this range while
// a ParallelEventProcessor is active).
const (
	tagPEPWorkReq  = 1 << 20
	tagPEPWorkResp = 1<<20 + 1
)

// ProductSelector names a product to prefetch alongside events.
type ProductSelector struct {
	Label string
	Type  string
}

// SelectorFor builds a selector from a label and an example value of the
// product's type.
func SelectorFor(label string, example any) ProductSelector {
	return ProductSelector{Label: label, Type: serde.TypeName(example)}
}

// key returns the prefetch cache key.
func (s ProductSelector) key() string { return s.Label + "#" + s.Type }

// PEPOptions tunes the ParallelEventProcessor. Defaults follow §IV-D of
// the paper: events are loaded from HEPnOS by a subset of processes in
// batches of 16384 (few RPCs, large payloads), then shared among processes
// in batches of 64 (fine-grain load balancing).
type PEPOptions struct {
	// LoadBatchSize is the number of events fetched from a database per
	// RPC by a reader.
	LoadBatchSize int
	// WorkBatchSize is the number of events handed to a worker at a time.
	WorkBatchSize int
	// Readers is the number of ranks designated as readers; 0 means
	// min(number of event databases, communicator size), the paper's
	// "typically as many readers as databases to read from".
	Readers int
	// Prefetch lists products to fetch in bulk with the events and ship
	// inside work batches.
	Prefetch []ProductSelector
}

func (o *PEPOptions) applyDefaults(ds *DataStore, commSize int) {
	if o.LoadBatchSize <= 0 {
		o.LoadBatchSize = 16384
	}
	if o.WorkBatchSize <= 0 {
		o.WorkBatchSize = 64
	}
	if o.Readers <= 0 {
		o.Readers = ds.NumEventDatabases()
	}
	if o.Readers > commSize {
		o.Readers = commSize
	}
}

// PEPStats reports what one ProcessEvents call did. Totals are identical
// on every rank (computed with allreduce); Local fields are per rank.
type PEPStats struct {
	LocalEvents int
	// LocalDegraded counts reads in this rank's work batches that left the
	// fast path: prefetch loads that fell back to on-demand RPCs because
	// every replica of their group failed, plus the replica-served reads
	// counted in LocalFailover.
	LocalDegraded int
	// LocalFailover counts reads (event keys and prefetched products)
	// served from a replica because the placement primary was unhealthy.
	LocalFailover int
	LocalStart    float64 // MPI Wtime at first processed batch
	LocalEnd      float64 // MPI Wtime after last processed batch
	TotalEvents   int64
	// TotalDegraded sums LocalDegraded across ranks: how much of the
	// prefetch batching was lost service-wide.
	TotalDegraded int64
	// TotalFailover sums LocalFailover across ranks: how much of the pass
	// was served by replicas instead of primaries.
	TotalFailover int64
	// Makespan is (max end − min start) across ranks — the paper's
	// throughput denominator.
	Makespan   float64
	Throughput float64 // events per second over the makespan
}

// pep wire messages (sent over the mpi layer, serde-encoded).
type pepWorkMsg struct {
	Done bool
	Keys [][]byte
	Pref []pepPrefEntry
	// Degraded is how many of this batch's prefetch loads failed over to
	// on-demand (the reader counts them; workers aggregate into stats).
	Degraded uint32
	// Failover is how many of this batch's reads (event keys owned via a
	// replica scan plus replica-served prefetch loads) left the primary.
	Failover uint32
}

type pepPrefEntry struct {
	EventIdx  uint32
	LabelType string
	Data      []byte
}

// ProcessEvents iterates over all events of the dataset in parallel across
// the communicator's ranks, invoking fn on each event exactly once
// service-wide. It implements the ParallelEventProcessor of §II-D: the
// first Readers ranks run background loaders that page event keys out of
// their assigned event databases and feed a queue; every rank (readers
// included) pulls work batches from the readers round-robin.
func (ds *DataStore) ProcessEvents(ctx context.Context, comm *mpi.Comm, dataset *DataSet, opts PEPOptions, fn func(*Event) error) (PEPStats, error) {
	if ds.closed.Load() {
		return PEPStats{}, ErrClosed
	}
	opts.applyDefaults(ds, comm.Size())

	// The whole run is one span; every RPC the readers and workers issue
	// parents under it through ctx.
	sp := ds.tracer.Start("core:pep", obs.KindInternal, obs.SpanFromContext(ctx), "")
	ctx = obs.ContextWithSpan(ctx, sp.Context())

	// Readers are long-running loops, so they get dedicated tracked
	// goroutines from the engine (the analog of dynamically created
	// execution streams) rather than occupying a fixed pool stream.
	var readerWG sync.WaitGroup
	if comm.Rank() < opts.Readers {
		readerWG.Add(1)
		ds.engine.Go(ctx, func(tctx context.Context) {
			defer readerWG.Done()
			ds.pepReader(tctx, comm, dataset, opts)
		})
	}

	stats, err := ds.pepWorker(ctx, comm, opts, fn)
	readerWG.Wait()

	// Aggregate: every rank learns the totals.
	stats.TotalEvents = comm.AllreduceInt64(int64(stats.LocalEvents), mpi.OpSum)
	stats.TotalDegraded = comm.AllreduceInt64(int64(stats.LocalDegraded), mpi.OpSum)
	stats.TotalFailover = comm.AllreduceInt64(int64(stats.LocalFailover), mpi.OpSum)
	start := comm.AllreduceFloat64(stats.LocalStart, mpi.OpMin)
	end := comm.AllreduceFloat64(stats.LocalEnd, mpi.OpMax)
	stats.Makespan = end - start
	if stats.Makespan > 0 {
		stats.Throughput = float64(stats.TotalEvents) / stats.Makespan
	}
	sp.End(err)
	return stats, err
}

// pepReader loads event keys from this reader's share of the event
// databases and serves work batches to requesting ranks.
func (ds *DataStore) pepReader(ctx context.Context, comm *mpi.Comm, dataset *DataSet, opts PEPOptions) {
	rank := comm.Rank()
	batches := make(chan pepWorkMsg, 64)

	// Background loader: page event keys out of the assigned databases in
	// LoadBatchSize pages, prefetch products, chop into work batches. Like
	// the reader it is a long-running loop, so it runs on a dedicated
	// engine goroutine; its per-database GetMulti groups fan out on the
	// engine's RPC pool through the Prefetcher.
	pf := ds.NewPrefetcher(opts.Prefetch...)
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	ds.engine.Go(ctx, func(tctx context.Context) {
		defer loadWG.Done()
		defer close(batches)
		prefix := dataset.key.Bytes()
		eventDBs := ds.v().EventDBs
		for dbi := rank; dbi < len(eventDBs); dbi += opts.Readers {
			db := eventDBs[dbi]
			if ds.rf > 1 && !ds.health.Usable(string(db.Addr)) {
				// A dead database's keys are read-owned by their surviving
				// replicas, whose scans pick them up below.
				continue
			}
			var from []byte
			for {
				page, err := ds.yc.ListKeys(tctx, db, from, prefix, opts.LoadBatchSize)
				if err != nil || len(page) == 0 {
					break // a failed database simply contributes no events
				}
				from = page[len(page)-1]
				// Keep only event-level keys of this dataset. With
				// replication every event key appears in rf databases, so
				// a scan keeps only the keys it read-owns: the first
				// usable replica in placement order. Exactly one scan
				// claims each key (given a settled health view), which
				// preserves the PEP's exactly-once contract.
				var evKeys [][]byte
				foEvents := 0
				for _, k := range page {
					ck, err := keys.ParseContainerKey(k)
					if err != nil || ck.Level() != keys.LevelEvent {
						continue
					}
					if ds.rf > 1 {
						parent, ok := ck.Parent()
						if !ok {
							continue
						}
						replicas := ds.eventReplicas(parent)
						if owner := ds.readOrder(replicas)[0]; owner != db {
							continue // another database's scan claims this key
						} else if owner != replicas[0] {
							foEvents++ // claimed here only because the primary is down
						}
					}
					evKeys = append(evKeys, k)
				}
				if foEvents > 0 {
					ds.failoverReads.Add(int64(foEvents))
				}
				for off := 0; off < len(evKeys); off += opts.WorkBatchSize {
					hi := off + opts.WorkBatchSize
					if hi > len(evKeys) {
						hi = len(evKeys)
					}
					msg := pepWorkMsg{Keys: evKeys[off:hi]}
					if off == 0 {
						// Page-level failover counts ride the first batch;
						// only the cross-rank totals are meaningful.
						msg.Failover = uint32(foEvents)
					}
					if len(opts.Prefetch) > 0 {
						pref, degraded, failover := pf.Fetch(tctx, msg.Keys)
						msg.Pref = pref
						msg.Degraded = uint32(degraded)
						msg.Failover += uint32(failover)
					}
					batches <- msg
				}
			}
		}
	})

	// Server loop: answer work requests until every rank has been told
	// this reader is exhausted.
	doneSent := 0
	for doneSent < comm.Size() {
		data, src := comm.Recv(mpi.AnySource, tagPEPWorkReq)
		_ = data
		msg, ok := <-batches
		if !ok {
			msg = pepWorkMsg{Done: true}
			doneSent++
		}
		payload, err := serde.Marshal(msg)
		if err != nil {
			// Serialization of our own message types cannot fail; treat
			// as fatal for this reader by reporting done.
			payload, _ = serde.Marshal(pepWorkMsg{Done: true})
			doneSent++
		}
		comm.Send(src, tagPEPWorkResp, payload)
	}
	loadWG.Wait()
}

// pepWorker pulls work batches from the readers round-robin and processes
// them. Every rank, reader or not, runs this.
func (ds *DataStore) pepWorker(ctx context.Context, comm *mpi.Comm, opts PEPOptions, fn func(*Event) error) (PEPStats, error) {
	var stats PEPStats
	var firstErr error
	alive := make([]int, 0, opts.Readers)
	for r := 0; r < opts.Readers; r++ {
		alive = append(alive, r)
	}
	started := false
	next := comm.Rank() % len(alive) // spread initial requests over readers
	for len(alive) > 0 {
		reader := alive[next%len(alive)]
		comm.Send(reader, tagPEPWorkReq, nil)
		payload, _ := comm.Recv(reader, tagPEPWorkResp)
		var msg pepWorkMsg
		if err := serde.Unmarshal(payload, &msg); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("hepnos: corrupt work batch: %w", err)
			}
			msg.Done = true
		}
		if msg.Done {
			// Remove this reader from the rotation.
			for i, r := range alive {
				if r == reader {
					alive = append(alive[:i], alive[i+1:]...)
					break
				}
			}
			continue
		}
		if !started {
			stats.LocalStart = comm.Wtime()
			started = true
		}
		stats.LocalDegraded += int(msg.Degraded) + int(msg.Failover)
		stats.LocalFailover += int(msg.Failover)
		ds.pepBatches.Add(1)
		// Rebuild per-event prefetch maps.
		var pref map[int]map[string][]byte
		if len(msg.Pref) > 0 {
			pref = make(map[int]map[string][]byte)
			for _, e := range msg.Pref {
				m := pref[int(e.EventIdx)]
				if m == nil {
					m = make(map[string][]byte)
					pref[int(e.EventIdx)] = m
				}
				m[e.LabelType] = e.Data
			}
		}
		for i, raw := range msg.Keys {
			ck, err := keys.ParseContainerKey(raw)
			if err != nil {
				continue
			}
			ev := ds.eventFromKey(ck, pref[i])
			if firstErr == nil {
				if err := fn(ev); err != nil {
					firstErr = err // keep draining so readers terminate
				}
			}
			stats.LocalEvents++
			ds.pepEvents.Add(1)
		}
		stats.LocalEnd = comm.Wtime()
		next++
	}
	if !started {
		now := comm.Wtime()
		stats.LocalStart, stats.LocalEnd = now, now
	}
	return stats, firstErr
}
