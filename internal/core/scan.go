package core

import (
	"context"
	"fmt"
	"reflect"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/serde"
	"github.com/hep-on-hpc/hepnos-go/internal/yokan"
)

// Server-side predicate pushdown (DESIGN.md §17): DataSet.Scan ships a
// selection predicate and a column projection to the product databases,
// which evaluate both against the columnar pages written by the ingest
// path and return only surviving event ids plus the requested columns.
// The analysis loop then touches a small fraction of the wire bytes a
// full row-path decode would move.

// scanFO is one pushdown-scan call with health-gated failover, mirroring
// getFO: replicas are tried in read order, transport-class failures move
// to the next copy, an application-level answer is authoritative. Page
// keys are identical on every replica, so a resume cursor taken from one
// copy is valid on another — a paged scan survives mid-flight failover.
// Successful calls feed the client's hepnos_scan_* counters.
func (ds *DataStore) scanFO(ctx context.Context, replicas []yokan.DBHandle, req yokan.ScanRequest) (*yokan.ScanResult, error) {
	var lastErr error
	for _, db := range ds.readOrder(replicas) {
		res, err := ds.yc.Scan(ctx, db, req)
		if err == nil {
			ds.countFailover(replicas[0], db)
			ds.scanRequests.Add(1)
			ds.scanPagesScanned.Add(int64(res.PagesScanned))
			ds.scanRowsScanned.Add(int64(res.RowsScanned))
			ds.scanRowsMatched.Add(int64(res.RowsMatched))
			ds.scanBytesReturned.Add(int64(res.ReturnedBytes))
			if res.FullBytes > res.ReturnedBytes {
				ds.scanBytesSaved.Add(int64(res.FullBytes - res.ReturnedBytes))
			}
			return res, nil
		}
		if !routable(err) {
			return nil, err
		}
		ds.noteReadFailure(db, err)
		lastErr = err
	}
	return nil, lastErr
}

// allColumns returns the identity projection for a schema.
func allColumns(schema *serde.ColumnSchema) []uint32 {
	cols := make([]uint32, schema.NumFields())
	for i := range cols {
		cols[i] = uint32(i)
	}
	return cols
}

// loadColumnar serves Load for a page-resident product: a no-predicate,
// all-column scan pinned to this event. found is false when the pages hold
// no rows for the event — the caller falls back to the row path, which
// covers zero-row products and types stored before registration.
func (c *container) loadColumnar(ctx context.Context, schema *serde.ColumnSchema, label string, ptr any) (found bool, err error) {
	srKey, _ := c.key.Parent()
	ev := c.key.Number()
	replicas := c.ds.productReplicas(srKey)
	req := yokan.ScanRequest{
		Group: pageGroupKey(srKey, label, schema.TypeName()),
		Cols:  allColumns(schema),
		Lo:    ev, Hi: ev,
	}
	chunks := make([][]byte, schema.NumFields())
	rows := 0
	for {
		res, err := c.ds.scanFO(ctx, replicas, req)
		if err != nil {
			return true, err
		}
		rows += len(res.Events)
		for f := range chunks {
			chunks[f] = append(chunks[f], res.Cols[f]...)
		}
		if len(res.More) == 0 {
			break
		}
		req.From = res.More
	}
	if rows == 0 {
		return false, nil
	}
	return true, schema.UnmarshalColumns(chunks, rows, ptr)
}

// hasColumnar reports whether the event's pages hold rows for the product;
// like loadColumnar it scans without columns, so only event ids cross the
// wire. found=false falls back to the row path.
func (c *container) hasColumnar(ctx context.Context, schema *serde.ColumnSchema, label string) (bool, error) {
	srKey, _ := c.key.Parent()
	ev := c.key.Number()
	replicas := c.ds.productReplicas(srKey)
	req := yokan.ScanRequest{
		Group: pageGroupKey(srKey, label, schema.TypeName()),
		Lo:    ev, Hi: ev,
	}
	for {
		res, err := c.ds.scanFO(ctx, replicas, req)
		if err != nil {
			return false, err
		}
		if res.RowsMatched > 0 {
			return true, nil
		}
		if len(res.More) == 0 {
			return false, nil
		}
		req.From = res.More
	}
}

// ScanStats accounts one cursor's pushdown work, summed over every scan
// RPC it issued. FullBytes/ReturnedBytes is the wire-byte reduction versus
// a full row-path decode of the scanned products.
type ScanStats struct {
	Requests      uint64 // scan RPCs issued
	PagesScanned  uint64
	RowsScanned   uint64
	RowsMatched   uint64
	FullBytes     uint64 // row-path bytes of everything scanned
	ReturnedBytes uint64 // column bytes + event ids actually shipped
}

// ScanCursor streams the events of a dataset whose columnar product rows
// survive a server-evaluated predicate, in (run, subrun, event) order.
// Usage:
//
//	cur := d.Scan(ctx, "reco", []nova.Slice{}, pred, "CVNe", "CalE")
//	for cur.Next() {
//	    id := cur.EventID()
//	    var rows []nova.Slice // only CVNe and CalE populated
//	    _ = cur.Rows(&rows)
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Cursors are not safe for concurrent use.
type ScanCursor struct {
	ctx      context.Context
	ds       *DataStore
	schema   *serde.ColumnSchema
	slice    reflect.Type // the product slice type []T
	label    string
	pred     serde.Predicate
	cols     []uint32
	pageSize int

	runs *RunCursor
	srs  *SubRunCursor

	curRun, curSub uint64
	replicas       []yokan.DBHandle
	group          []byte
	from           []byte
	inSubrun       bool // a subrun's paged scan is in progress

	events       []uint64
	decoded      reflect.Value // []T, parallel to events
	gStart, gEnd int           // current event's row range in decoded

	stats ScanStats
	err   error
	done  bool
}

// Scan starts a pushdown scan over every event of the dataset holding a
// columnar product of example's registered type under label. Rows are
// filtered server-side by pred (the zero Predicate selects all rows) and
// only the named columns are shipped back; empty columns selects every
// field. Scans run in the interactive QoS class and fail over between
// replicas like any read.
func (d *DataSet) Scan(ctx context.Context, label string, example any, pred serde.Predicate, columns ...string) *ScanCursor {
	c := &ScanCursor{ds: d.ds, label: label, pageSize: listPageSize}
	c.ctx = qos.WithClass(ctx, qos.ClassInteractive)
	schema := serde.ColumnarOf(example)
	if schema == nil {
		c.err = fmt.Errorf("%w: type %q is not registered for columnar storage", serde.ErrUnsupported, serde.TypeName(example))
		return c
	}
	c.schema = schema
	t := reflect.TypeOf(example)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	c.slice = t
	if pred.Op != 0 {
		bound, err := pred.Bind(schema)
		if err != nil {
			c.err = fmt.Errorf("hepnos: scan predicate: %w", err)
			return c
		}
		c.pred = bound
	}
	if len(columns) == 0 {
		c.cols = allColumns(schema)
	} else {
		c.cols = make([]uint32, len(columns))
		for i, name := range columns {
			f := schema.FieldIndex(name)
			if f < 0 {
				c.err = fmt.Errorf("hepnos: scan: type %q has no column %q", schema.TypeName(), name)
				return c
			}
			c.cols[i] = uint32(f)
		}
	}
	c.runs = d.RunCursor(c.ctx, 0)
	return c
}

// Next advances to the next event with at least one surviving row; it
// returns false at the end of the dataset or on error.
func (c *ScanCursor) Next() bool {
	if c.err != nil || c.done {
		return false
	}
	for {
		// Advance within the decoded reply: one event per Next call.
		if c.gEnd < len(c.events) {
			c.gStart = c.gEnd
			ev := c.events[c.gStart]
			for c.gEnd < len(c.events) && c.events[c.gEnd] == ev {
				c.gEnd++
			}
			return true
		}
		if c.inSubrun {
			if !c.fetch() {
				if c.err != nil {
					return false
				}
				continue // subrun drained; move to the next one
			}
			continue
		}
		if !c.nextSubrun() {
			return false
		}
	}
}

// nextSubrun positions the cursor on the next subrun of the dataset,
// crossing run boundaries as needed.
func (c *ScanCursor) nextSubrun() bool {
	for {
		if c.srs != nil && c.srs.Next() {
			sr := c.srs.SubRun()
			c.curSub = sr.Number()
			c.group = pageGroupKey(sr.Key(), c.label, c.schema.TypeName())
			c.replicas = c.ds.productReplicas(sr.Key())
			c.from = nil
			c.inSubrun = true
			return true
		}
		if c.srs != nil {
			if err := c.srs.Err(); err != nil {
				c.err = err
				return false
			}
			c.srs = nil
		}
		if !c.runs.Next() {
			c.err = c.runs.Err()
			c.done = true
			return false
		}
		run := c.runs.Run()
		c.curRun = run.Number()
		c.srs = run.SubRunCursor(c.ctx, 0)
	}
}

// fetch issues one scan RPC for the current subrun and decodes the reply.
// It returns false when the subrun is drained (or on error, with c.err
// set); surviving rows may still be empty on a true return.
func (c *ScanCursor) fetch() bool {
	sp := c.ds.tracer.Start("core:scan", obs.KindInternal, obs.SpanFromContext(c.ctx), "")
	res, err := c.ds.scanFO(c.ctx, c.replicas, yokan.ScanRequest{
		Group: c.group,
		Pred:  c.pred,
		Cols:  c.cols,
		Hi:    ^uint64(0),
		From:  c.from,
	})
	sp.End(err)
	if err != nil {
		c.err = err
		return false
	}
	c.stats.Requests++
	c.stats.PagesScanned += res.PagesScanned
	c.stats.RowsScanned += res.RowsScanned
	c.stats.RowsMatched += res.RowsMatched
	c.stats.FullBytes += res.FullBytes
	c.stats.ReturnedBytes += res.ReturnedBytes
	c.from = res.More
	if len(res.More) == 0 {
		c.inSubrun = false
	}
	c.events = res.Events
	c.gStart, c.gEnd = 0, 0
	if len(res.Events) == 0 {
		c.decoded = reflect.Value{}
		return c.inSubrun
	}
	// Reassemble the projected columns into []T with only the requested
	// fields populated; per-event groups are then subslices.
	byField := make([][]byte, c.schema.NumFields())
	for i, f := range c.cols {
		byField[f] = res.Cols[i]
	}
	out := reflect.New(c.slice)
	if derr := c.schema.UnmarshalColumns(byField, len(res.Events), out.Interface()); derr != nil {
		c.err = fmt.Errorf("hepnos: scan decode: %w", derr)
		return false
	}
	c.decoded = out.Elem()
	return true
}

// EventID returns the current event's coordinates.
func (c *ScanCursor) EventID() EventID {
	return EventID{Run: c.curRun, SubRun: c.curSub, Event: c.events[c.gStart]}
}

// NumRows returns how many rows of the current event survived the
// predicate.
func (c *ScanCursor) NumRows() int { return c.gEnd - c.gStart }

// Rows stores the current event's surviving rows into out, a pointer to
// the product slice type (e.g. *[]nova.Slice). Only the requested columns
// are populated; the slice aliases the cursor's decode buffer and is valid
// until the next Next call.
func (c *ScanCursor) Rows(out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() || rv.Elem().Type() != c.slice {
		return fmt.Errorf("hepnos: scan rows: out must be *%s", c.slice)
	}
	rv.Elem().Set(c.decoded.Slice(c.gStart, c.gEnd))
	return nil
}

// Stats returns the accounting accumulated so far.
func (c *ScanCursor) Stats() ScanStats { return c.stats }

// Err reports a cursor failure (nil at a clean end).
func (c *ScanCursor) Err() error { return c.err }

// ProductDBCount is one product database's key census, split between
// row-oriented product keys and columnar page keys. Counting needs only
// the keys — values never cross the wire (ListKeys ships keys alone).
type ProductDBCount struct {
	DB    yokan.DBHandle
	Rows  uint64 // row-path product keys
	Pages uint64 // columnar page keys (field pages + row metas)
}

// ProductCounts censuses every product database of the service: per-DB
// counts of row products and columnar pages, decoded from key shape alone.
// With replication each replica's database is counted separately, so the
// totals include copies. Used by hepnos-ls.
func (ds *DataStore) ProductCounts(ctx context.Context) ([]ProductDBCount, error) {
	if ds.closed.Load() {
		return nil, ErrClosed
	}
	productDBs := ds.v().ProductDBs
	out := make([]ProductDBCount, 0, len(productDBs))
	for _, db := range productDBs {
		pc := ProductDBCount{DB: db}
		var from []byte
		for {
			page, err := ds.yc.ListKeys(ctx, db, from, nil, listPageSize)
			if err != nil {
				return nil, fmt.Errorf("hepnos: product counts from %s: %w", db, err)
			}
			if len(page) == 0 {
				break
			}
			for _, k := range page {
				if len(k) >= len(pageGroupMarker) && string(k[:len(pageGroupMarker)]) == pageGroupMarker {
					pc.Pages++
				} else {
					pc.Rows++
				}
			}
			from = page[len(page)-1]
		}
		out = append(out, pc)
	}
	return out, nil
}
