// Package core implements HEPnOS itself: the hierarchical object store for
// High Energy Physics data described in §II of the paper. Data is organized
// as named datasets containing numbered runs, subruns and events; any
// container can hold typed, labelled products (serialized Go values). The
// store is distributed over Yokan databases served by one or more server
// processes; placement follows the paper's §II-C design:
//
//   - dataset full paths map to UUIDs in dataset databases,
//   - a container key's database is chosen by consistent-hashing its
//     *parent's* key, so the children of one container are co-located and
//     iterable with a single database iterator, in order,
//   - a product's database is chosen by hashing its container key, so the
//     products of one container batch onto one server.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/asyncengine"
	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/chash"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/health"
	"github.com/hep-on-hpc/hepnos-go/internal/keys"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
	"github.com/hep-on-hpc/hepnos-go/internal/serde"
	"github.com/hep-on-hpc/hepnos-go/internal/uuid"
	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
	"github.com/hep-on-hpc/hepnos-go/internal/yokan"
)

// Errors returned by datastore operations. Each carries its own stable code
// so wire transit and errors.Is keep them distinct even where classes
// coincide (every "no such X" is not_found, but a missing dataset is never
// mistaken for a missing product).
var (
	ErrNoSuchDataSet   = xerr.Sentinel("hepnos/no_such_dataset", xerr.ClassNotFound, "hepnos: no such dataset")
	ErrNoSuchContainer = xerr.Sentinel("hepnos/no_such_container", xerr.ClassNotFound, "hepnos: no such container")
	ErrNoSuchProduct   = xerr.Sentinel("hepnos/no_such_product", xerr.ClassNotFound, "hepnos: no such product")
	ErrBadPath         = xerr.Sentinel("hepnos/bad_path", xerr.ClassInvalid, "hepnos: invalid dataset path")
	ErrClosed          = xerr.Sentinel("hepnos/datastore_closed", xerr.ClassClosed, "hepnos: datastore is closed")
)

// Placement selects the key-to-database mapping strategy.
type Placement string

// Placement strategies. PlacementModulo is HEPnOS's default (the database
// count is fixed for a datastore's lifetime). PlacementJump uses jump
// consistent hashing so that *growing* the database set relocates only
// ~1/(n+1) of the keys — the property the storage-rescaling extension
// (Pufferscale, §V of the paper) relies on. All clients of one service
// must use the same strategy.
const (
	PlacementModulo Placement = "modulo"
	PlacementJump   Placement = "jump"
)

func (p Placement) placer(n int) chash.Placer {
	if p == PlacementJump {
		return chash.Jump{N: n}
	}
	return chash.Modulo{N: n}
}

// ClientConfig configures Connect.
type ClientConfig struct {
	// Group describes the service (addresses and provider ids), typically
	// loaded from a group file written at deployment.
	Group bedrock.GroupFile
	// Address is this client's own endpoint address. Empty picks an
	// automatic inproc name (or tcp://127.0.0.1:0 for tcp groups).
	Address fabric.Address
	// EagerLimit overrides the RPC-inline threshold for batch transfers.
	EagerLimit int
	// Placement selects the key placement strategy (default modulo).
	Placement Placement
	// NetSim optionally attaches a network cost model to the client's
	// endpoint (latency/bandwidth injection for tests and ablations).
	NetSim *fabric.NetSim
	// Resilience optionally attaches a shared retry/backoff/circuit-
	// breaker policy to every RPC the client issues (discovery, puts,
	// gets, iteration). Transient transport faults — injected drops,
	// injection-bandwidth overload (§IV-E), crashed-and-restarted
	// servers — are then absorbed instead of surfacing to the
	// application. resilience.Default() is a good starting point.
	Resilience *resilience.Policy
	// Async sizes the client-side AsyncEngine (§II-D) that WriteBatch,
	// the Prefetcher, EventCursor lookahead, PEP and the data loader all
	// share. Nil means asyncengine.DefaultConfig(); set Disabled to force
	// every layer onto its synchronous path.
	Async *asyncengine.Config
	// Tracer optionally records trace spans for every RPC the client
	// issues and every core-layer stage (batch flushes, prefetch fan-out,
	// PEP runs). The span context crosses the wire, so a traced client
	// against a traced service yields linked client/server span pairs.
	Tracer *obs.Tracer
	// RF overrides the deployment's replication factor (0 uses the group
	// file's; both defaulting leaves replication off). With RF ≥ 2 every
	// key is written to its placement primary plus RF−1 successor
	// databases on distinct servers, and reads fail over to replicas when
	// the primary is unhealthy. All clients of one service must agree.
	RF int
	// Health tunes the failure-detector thresholds (zero values use the
	// package defaults).
	Health health.Config
	// HeartbeatInterval is the background liveness probe period (default
	// 500ms). Probes run only when RF ≥ 2, the async engine is enabled and
	// DisableHeartbeat is false; circuit-breaker trips feed the tracker
	// either way.
	HeartbeatInterval time.Duration
	// DisableHeartbeat turns the background prober loop off; tests drive
	// ProbeOnce deterministically instead.
	DisableHeartbeat bool
	// MinGroupEpoch rejects group files whose membership epoch is older —
	// the guard against connecting through a stale view after a rescale or
	// rejoin changed the deployment.
	MinGroupEpoch uint64
	// Tenant names the QoS identity this client's traffic runs under.
	// QoS-enabled servers meter, queue and shed per tenant; empty means
	// the shared default tenant. The tenant rides every RPC envelope, so
	// no per-call tagging is needed.
	Tenant string
}

var clientSeq atomic.Int64

// View is one immutable snapshot of a service's databases by role, in
// deterministic placement order, plus the membership the snapshot was
// discovered from. A DataStore serves from exactly one committed view at a
// time; live rebalancing (internal/autopilot) installs a second, alternate
// view for the duration of a migration so writes land in both and reads can
// fall back across the epoch bump.
type View struct {
	DatasetDBs []yokan.DBHandle
	RunDBs     []yokan.DBHandle
	SubrunDBs  []yokan.DBHandle
	EventDBs   []yokan.DBHandle
	ProductDBs []yokan.DBHandle
	// Group is the membership document the view was discovered from; its
	// Epoch orders views (commits only move forward).
	Group bedrock.GroupFile
}

// DataStore is a client handle to a deployed HEPnOS service. It is safe for
// concurrent use by multiple goroutines.
type DataStore struct {
	mi     *margo.Instance
	yc     *yokan.Client
	engine *asyncengine.Engine // nil when async is disabled

	// view is the committed database view every operation routes by; alt,
	// when non-nil, is the migration-window alternate (the target view
	// between BeginMigration and CommitMigration, the outgoing view between
	// CommitMigration and RetireView). Replica sets union the two so the
	// copy window dual-writes and dual-reads.
	view atomic.Pointer[View]
	alt  atomic.Pointer[View]
	// migMu serializes migration lifecycle transitions (begin/commit/
	// abort/retire); data-plane readers stay lock-free on the atomics.
	migMu sync.Mutex
	// viewGen counts view transitions that can invalidate an in-flight
	// read's replica set (commit and retire). Readers snapshot it before
	// resolving replicas; a key miss observed across a generation change
	// may have come from a retired copy and is re-resolved instead of
	// trusted (see getFO/existsFO).
	viewGen atomic.Uint64

	placement Placement
	closed    atomic.Bool

	// pressure mirrors server-push backpressure onto the ingest pool.
	pressure *pressureController

	// Replication and failover state (ISSUE 5): rf copies per key, a
	// health tracker fed by the heartbeat prober and breaker trips, and
	// the prober itself (nil when rf == 1).
	rf     int
	health *health.Tracker
	prober *health.Prober

	// Client-side observability: one registry covering the endpoint's
	// breadcrumbs, the resilience policy, the async pools and the core
	// counters below; tracer is the (optional) span recorder shared with
	// the endpoint.
	registry *obs.Registry
	tracer   *obs.Tracer

	pepEvents        atomic.Int64 // events processed by PEP workers
	pepBatches       atomic.Int64 // work batches processed by PEP workers
	prefetchLoads    atomic.Int64 // product loads requested by the Prefetcher
	prefetchDegraded atomic.Int64 // loads degraded to on-demand by failed groups
	prefetchDrained  atomic.Int64 // cancelled-fetch segments recycled by the background drain
	failoverReads    atomic.Int64 // reads served by a replica instead of the primary
	replicaWrites    atomic.Int64 // extra copies written beyond the first per key
	replicaDrops     atomic.Int64 // replica copies dropped because their server was down
	resyncReplayed   atomic.Int64 // keys replayed onto rejoined servers by anti-entropy

	// Live-rebalancing accounting (DESIGN.md §18).
	migrationCopied   atomic.Int64 // key copies written to migration targets
	migrationRepaired atomic.Int64 // missing copies healed by the verify pass
	migrationErased   atomic.Int64 // stale keys erased from outgoing databases

	// Pushdown-scan accounting, summed over every scan RPC this client
	// issued (Load/HasProduct single-event scans and ScanCursor sweeps).
	scanRequests      atomic.Int64
	scanPagesScanned  atomic.Int64
	scanRowsScanned   atomic.Int64
	scanRowsMatched   atomic.Int64
	scanBytesReturned atomic.Int64
	scanBytesSaved    atomic.Int64
}

// Connect discovers the service's databases and returns a ready DataStore,
// the analog of hepnos::DataStore::connect("config.json").
func Connect(ctx context.Context, cfg ClientConfig) (*DataStore, error) {
	if len(cfg.Group.Servers) == 0 {
		return nil, fmt.Errorf("hepnos: connect: group lists no servers")
	}
	if cfg.Group.Epoch < cfg.MinGroupEpoch {
		return nil, fmt.Errorf("hepnos: connect: group file epoch %d is older than required epoch %d (stale membership view)",
			cfg.Group.Epoch, cfg.MinGroupEpoch)
	}
	rf := cfg.RF
	if rf <= 0 {
		rf = cfg.Group.ReplicationFactor()
	}
	if rf > len(cfg.Group.Servers) {
		return nil, fmt.Errorf("hepnos: connect: replication factor %d exceeds %d servers", rf, len(cfg.Group.Servers))
	}
	// The health tracker exists before any RPC leaves the process, and the
	// resilience policy's breaker-open hook feeds it from the data plane.
	// The hook is captured when a target's breaker is first created, so it
	// must be installed before any traffic. (The policy should not be
	// shared across concurrently-connecting clients.)
	tracker := health.NewTracker(cfg.Health)
	if cfg.Resilience != nil && cfg.Resilience.OnBreakerOpen == nil {
		cfg.Resilience.OnBreakerOpen = tracker.ReportBreakerOpen
	}
	addr := cfg.Address
	if addr == "" {
		if cfg.Group.Protocol == "tcp" {
			addr = "tcp://127.0.0.1:0"
		} else {
			addr = fabric.Address(fmt.Sprintf("inproc://hepnos-client-%d", clientSeq.Add(1)))
		}
	}
	// Server-push backpressure lands here: every reply carries the server
	// gate's pressure level, and the controller mirrors the worst level
	// seen across servers onto the ingest pool (shrinking WriteBatch's
	// flush concurrency) until the pressure subsides. The controller is
	// bound to the engine after it exists; levels observed before that
	// are kept and applied at bind time.
	pc := &pressureController{levels: map[fabric.Address]uint8{}}
	mi, err := margo.Init(margo.Config{
		Address: addr, NetSim: cfg.NetSim, Resilience: cfg.Resilience,
		Tracer: cfg.Tracer, Tenant: cfg.Tenant, OnPressure: pc.observe,
	})
	if err != nil {
		return nil, err
	}
	placement := cfg.Placement
	if placement == "" {
		placement = PlacementModulo
	}
	ds := &DataStore{mi: mi, yc: yokan.NewClient(mi), placement: placement, rf: rf, health: tracker}
	if cfg.EagerLimit > 0 {
		ds.yc.EagerLimit = cfg.EagerLimit
	}

	view, err := discoverView(ctx, ds.yc, cfg.Group)
	if err != nil {
		mi.Finalize()
		return nil, err
	}
	ds.view.Store(view)
	acfg := asyncengine.DefaultConfig()
	if cfg.Async != nil {
		acfg = *cfg.Async
	}
	eng, err := asyncengine.New(acfg)
	if err != nil {
		mi.Finalize()
		return nil, fmt.Errorf("hepnos: connect: async engine: %w", err)
	}
	ds.engine = eng
	ds.pressure = pc
	pc.bind(eng)

	// One registry for everything this client measures. Collectors close
	// over live counters, so building it here costs nothing per operation.
	ds.tracer = cfg.Tracer
	ds.registry = obs.NewRegistry()
	mi.Endpoint().RegisterMetrics(ds.registry)
	if cfg.Resilience != nil {
		cfg.Resilience.RegisterMetrics(ds.registry)
	}
	eng.RegisterMetrics(ds.registry)
	if cfg.Tracer != nil {
		obs.RegisterTracerMetrics(ds.registry, cfg.Tracer)
	}
	ds.health.RegisterMetrics(ds.registry)
	ds.registerCoreMetrics()

	// Heartbeat prober: a tiny control-plane ping per server on an
	// interval, registered on the fabric endpoint directly so a saturated
	// provider pool does not read as a dead server. The loop rides a
	// tracked engine goroutine (shut down with the engine); with async
	// disabled, or heartbeats off, tests drive ProbeOnce explicitly and
	// breaker trips remain the only passive feed.
	if rf > 1 {
		targets := make([]string, len(cfg.Group.Servers))
		for i, srv := range cfg.Group.Servers {
			targets[i] = srv.Address
		}
		probe := func(pctx context.Context, target string) error {
			return mi.Ping(pctx, fabric.Address(target))
		}
		ds.prober = health.NewProber(tracker, probe, targets, health.ProberConfig{Interval: cfg.HeartbeatInterval})
		if eng != nil && !cfg.DisableHeartbeat {
			eng.Go(context.Background(), ds.prober.Run)
		}
	}
	return ds, nil
}

// discoverView queries every server of group for its databases and builds
// the placement-ordered View — the client side of service discovery, shared
// by Connect and by live rebalancing (which re-discovers after growing or
// before draining the deployment).
func discoverView(ctx context.Context, yc *yokan.Client, group bedrock.GroupFile) (*View, error) {
	type dbEntry struct {
		handle yokan.DBHandle
		index  int
	}
	byRole := map[string][]dbEntry{}
	for _, srv := range group.Servers {
		for _, pid := range srv.Providers {
			names, _, err := yc.ListDatabases(ctx, fabric.Address(srv.Address), margo.ProviderID(pid))
			if err != nil {
				return nil, fmt.Errorf("hepnos: connect: query %s provider %d: %w", srv.Address, pid, err)
			}
			for _, name := range names {
				role, idx, ok := parseDBName(name)
				if !ok {
					continue // not a HEPnOS database; ignore
				}
				byRole[role] = append(byRole[role], dbEntry{
					handle: yokan.DBHandle{
						Addr:     fabric.Address(srv.Address),
						Provider: margo.ProviderID(pid),
						Name:     name,
					},
					index: idx,
				})
			}
		}
	}
	// Order each role set by the database index embedded in its name, so
	// every client agrees on placement regardless of discovery order.
	var dupErr error
	assign := func(role string) []yokan.DBHandle {
		entries := byRole[role]
		sort.Slice(entries, func(i, j int) bool { return entries[i].index < entries[j].index })
		out := make([]yokan.DBHandle, len(entries))
		for i, e := range entries {
			// Two databases with the same name (e.g. two deployments
			// accidentally merged into one group) would make placement
			// ambiguous; refuse to connect.
			if i > 0 && entries[i-1].index == e.index && dupErr == nil {
				dupErr = fmt.Errorf("hepnos: connect: duplicate database %q in group", e.handle.Name)
			}
			out[i] = e.handle
		}
		return out
	}
	v := &View{
		DatasetDBs: assign(bedrock.RoleDatasets),
		RunDBs:     assign(bedrock.RoleRuns),
		SubrunDBs:  assign(bedrock.RoleSubruns),
		EventDBs:   assign(bedrock.RoleEvents),
		ProductDBs: assign(bedrock.RoleProducts),
		Group:      group,
	}
	if dupErr != nil {
		return nil, dupErr
	}
	for role, dbs := range map[string][]yokan.DBHandle{
		"dataset": v.DatasetDBs, "run": v.RunDBs, "subrun": v.SubrunDBs,
		"event": v.EventDBs, "product": v.ProductDBs,
	} {
		if len(dbs) == 0 {
			return nil, fmt.Errorf("hepnos: connect: service has no %s databases", role)
		}
	}
	return v, nil
}

// DiscoverView rediscovers the database view described by group, using this
// client's endpoint. Rebalancing uses it to build the target view after the
// deployment changed shape.
func (ds *DataStore) DiscoverView(ctx context.Context, group bedrock.GroupFile) (*View, error) {
	if ds.closed.Load() {
		return nil, ErrClosed
	}
	return discoverView(ctx, ds.yc, group)
}

// v returns the committed view. It is never nil after Connect.
func (ds *DataStore) v() *View { return ds.view.Load() }

// pressureController turns per-server backpressure levels (pushed in every
// RPC reply by a QoS-gated server) into one client-side throttle: the
// maximum level across servers is applied to the ingest pool, holding back
// flush slots in proportion. The max — not the mean — because a batch
// writer spreads every flush over all servers, so the most loaded one
// bounds useful ingest throughput anyway.
type pressureController struct {
	mu      sync.Mutex
	levels  map[fabric.Address]uint8
	engine  *asyncengine.Engine // nil until bind
	current uint8
}

// observe records one server's pushed level; it is the margo OnPressure
// hook, called from RPC completion paths, so it must stay cheap.
func (pc *pressureController) observe(target fabric.Address, level uint8) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if level == 0 {
		delete(pc.levels, target)
	} else {
		pc.levels[target] = level
	}
	var max uint8
	for _, l := range pc.levels {
		if l > max {
			max = l
		}
	}
	if max == pc.current {
		return
	}
	pc.current = max
	if pc.engine != nil {
		pc.engine.SetPressure(asyncengine.PoolIngest, max)
	}
}

// bind attaches the engine once it exists, replaying any level already
// observed during connect-time discovery RPCs.
func (pc *pressureController) bind(eng *asyncengine.Engine) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.engine = eng
	if eng != nil && pc.current != 0 {
		eng.SetPressure(asyncengine.PoolIngest, pc.current)
	}
}

// level returns the throttle currently applied (0–255, 0 = none).
func (pc *pressureController) level() uint8 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.current
}

// PressureLevel reports the server-push backpressure level currently
// applied to the client's ingest pool (0 = none, 255 = full stop). It is
// the max across servers; tests and operators use it to see throttling.
func (ds *DataStore) PressureLevel() uint8 {
	if ds.pressure == nil {
		return 0
	}
	return ds.pressure.level()
}

// parseDBName splits "<role>_<index>".
func parseDBName(name string) (role string, index int, ok bool) {
	i := strings.LastIndexByte(name, '_')
	if i <= 0 {
		return "", 0, false
	}
	role = name[:i]
	switch role {
	case bedrock.RoleDatasets, bedrock.RoleRuns, bedrock.RoleSubruns,
		bedrock.RoleEvents, bedrock.RoleProducts:
	default:
		return "", 0, false
	}
	var idx int
	if _, err := fmt.Sscanf(name[i+1:], "%d", &idx); err != nil {
		return "", 0, false
	}
	return role, idx, true
}

// Close shuts down the async engine (canceling any in-flight background
// work) and releases the client's endpoint. The service keeps running.
func (ds *DataStore) Close() {
	if ds.closed.CompareAndSwap(false, true) {
		ds.engine.Shutdown()
		ds.mi.Finalize()
	}
}

// Engine returns the client's AsyncEngine, or nil when async was disabled.
// All client-side background work (asynchronous flushes, prefetch fan-out,
// cursor lookahead, PEP readers, parallel ingest) runs on its pools.
func (ds *DataStore) Engine() *asyncengine.Engine { return ds.engine }

// NumEventDatabases returns how many event databases the service has; the
// ParallelEventProcessor sizes its reader set from this (§II-D).
func (ds *DataStore) NumEventDatabases() int { return len(ds.v().EventDBs) }

// NumProductDatabases returns how many product databases the service has.
func (ds *DataStore) NumProductDatabases() int { return len(ds.v().ProductDBs) }

// dbFor picks the database holding keys whose *parent* is parentKey among
// the role's databases, per the paper's placement rule.
func (ds *DataStore) dbFor(dbs []yokan.DBHandle, parentKey []byte) yokan.DBHandle {
	return dbs[ds.placement.placer(len(dbs)).Place(parentKey)]
}

// datasetDBForPath places a dataset path entry by its parent path.
func (ds *DataStore) datasetDBForPath(path string) yokan.DBHandle {
	return ds.dbFor(ds.v().DatasetDBs, []byte(parentPath(path)))
}

// runDBForDataset places a dataset's runs.
func (ds *DataStore) runDBForDataset(dsKey keys.ContainerKey) yokan.DBHandle {
	return ds.dbFor(ds.v().RunDBs, dsKey.Bytes())
}

// subrunDBForRun places a run's subruns.
func (ds *DataStore) subrunDBForRun(runKey keys.ContainerKey) yokan.DBHandle {
	return ds.dbFor(ds.v().SubrunDBs, runKey.Bytes())
}

// eventDBForSubRun places a subrun's events.
func (ds *DataStore) eventDBForSubRun(srKey keys.ContainerKey) yokan.DBHandle {
	return ds.dbFor(ds.v().EventDBs, srKey.Bytes())
}

// productDBForContainer places a container's products by the container's
// own key (batched product reads hit one database, §II-C3).
func (ds *DataStore) productDBForContainer(ck keys.ContainerKey) yokan.DBHandle {
	return ds.dbFor(ds.v().ProductDBs, ck.Bytes())
}

// pathSep separates dataset path components.
const pathSep = "/"

// normalizePath validates and canonicalizes "a/b/c" (no empty components).
func normalizePath(path string) (string, error) {
	path = strings.Trim(path, pathSep)
	if path == "" {
		return "", fmt.Errorf("%w: empty path", ErrBadPath)
	}
	parts := strings.Split(path, pathSep)
	for _, p := range parts {
		if p == "" {
			return "", fmt.Errorf("%w: %q has empty component", ErrBadPath, path)
		}
	}
	return strings.Join(parts, pathSep), nil
}

// parentPath returns the path of the enclosing dataset ("" for top level).
func parentPath(path string) string {
	if i := strings.LastIndex(path, pathSep); i >= 0 {
		return path[:i]
	}
	return ""
}

// CreateDataSet creates the dataset at path, creating missing parents like
// mkdir -p. It is idempotent and returns the dataset handle.
func (ds *DataStore) CreateDataSet(ctx context.Context, path string) (*DataSet, error) {
	if ds.closed.Load() {
		return nil, ErrClosed
	}
	norm, err := normalizePath(path)
	if err != nil {
		return nil, err
	}
	parts := strings.Split(norm, pathSep)
	var cur string
	var last *DataSet
	for _, p := range parts {
		if cur == "" {
			cur = p
		} else {
			cur = cur + pathSep + p
		}
		last, err = ds.createOneDataSet(ctx, cur)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

func (ds *DataStore) createOneDataSet(ctx context.Context, path string) (*DataSet, error) {
	// Atomic get-or-put: concurrent creators race on the server, and
	// everyone proceeds with the single winning UUID. (A plain get/put
	// pair would let a loser build its hierarchy under an orphaned UUID.)
	// With replication the race is arbitrated on one replica and the
	// winning UUID is copied to the rest.
	candidate := uuid.New()
	winner, _, err := ds.replicatedPutIfAbsent(ctx, ds.datasetReplicas(path), []byte(path), candidate[:])
	if err != nil {
		return nil, err
	}
	id, err := uuid.FromBytes(winner)
	if err != nil {
		return nil, fmt.Errorf("hepnos: dataset %q has corrupt UUID: %w", path, err)
	}
	return ds.datasetHandle(path, id), nil
}

// OpenDataSet returns a handle to an existing dataset, or ErrNoSuchDataSet.
// This is the ds = datastore["path/to/dataset"] accessor from Listing 1.
func (ds *DataStore) OpenDataSet(ctx context.Context, path string) (*DataSet, error) {
	if ds.closed.Load() {
		return nil, ErrClosed
	}
	norm, err := normalizePath(path)
	if err != nil {
		return nil, err
	}
	raw, err := ds.getFO(ctx, func() []yokan.DBHandle { return ds.datasetReplicas(norm) }, []byte(norm))
	if errors.Is(err, yokan.ErrKeyNotFound) {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDataSet, norm)
	}
	if err != nil {
		return nil, err
	}
	id, err := uuid.FromBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("hepnos: dataset %q has corrupt UUID: %w", norm, err)
	}
	return ds.datasetHandle(norm, id), nil
}

func (ds *DataStore) datasetHandle(path string, id uuid.UUID) *DataSet {
	return &DataSet{
		container: container{ds: ds, key: keys.ForDataSet(id)},
		path:      path,
	}
}

// ListDataSets returns the names (not full paths) of the datasets directly
// inside parent ("" for the top level), in lexicographic order.
func (ds *DataStore) ListDataSets(ctx context.Context, parent string) ([]string, error) {
	if ds.closed.Load() {
		return nil, ErrClosed
	}
	prefix := ""
	norm := ""
	if parent != "" {
		var err error
		if norm, err = normalizePath(parent); err != nil {
			return nil, err
		}
		prefix = norm + pathSep
	}
	// All children of one parent live in one database (placement is by
	// parent path), so one paginated scan suffices.
	replicas := ds.unionReplicas(func(v *View) []yokan.DBHandle { return v.DatasetDBs }, []byte(norm))
	var names []string
	var from []byte
	for {
		page, err := ds.listKeysFO(ctx, replicas, from, []byte(prefix), listPageSize)
		if err != nil {
			return nil, err
		}
		if len(page) == 0 {
			break
		}
		for _, k := range page {
			rest := strings.TrimPrefix(string(k), prefix)
			if rest == "" || strings.Contains(rest, pathSep) {
				continue // grandchildren live here only if their parent hashes alike; skip
			}
			names = append(names, rest)
		}
		from = page[len(page)-1]
	}
	return names, nil
}

// listPageSize is the pagination unit for iteration RPCs.
const listPageSize = 1024

// decodeProduct deserializes stored bytes into ptr.
func decodeProduct(data []byte, ptr any) error {
	if err := serde.Unmarshal(data, ptr); err != nil {
		return fmt.Errorf("hepnos: deserialize product: %w", err)
	}
	return nil
}

// EventDatabases returns the handles of the service's event databases, in
// placement order. Exposed for tooling and ablation benchmarks; normal
// applications never need it.
func (ds *DataStore) EventDatabases() []yokan.DBHandle {
	return append([]yokan.DBHandle(nil), ds.v().EventDBs...)
}

// Yokan returns the underlying key-value client. Exposed for tooling and
// ablation benchmarks; normal applications never need it.
func (ds *DataStore) Yokan() *yokan.Client { return ds.yc }

// Margo returns the client's fabric endpoint. The autopilot scrapes server
// metrics over it — the same instance the data path uses, so monitoring
// traffic shares the client's QoS envelope.
func (ds *DataStore) Margo() *margo.Instance { return ds.mi }

// RF returns the effective replication factor (1 when replication is off).
func (ds *DataStore) RF() int { return ds.rf }

// Health returns the client's liveness tracker. Never nil after Connect;
// with RF 1 it simply never drives routing decisions.
func (ds *DataStore) Health() *health.Tracker { return ds.health }

// ProbeOnce runs one synchronous heartbeat round over every server, feeding
// the health tracker. Deterministic tests (and recovery tooling) call it
// instead of waiting on the background prober's interval. No-op when the
// datastore has no prober (RF 1).
func (ds *DataStore) ProbeOnce(ctx context.Context) {
	if ds.prober != nil {
		ds.prober.Tick(ctx)
	}
}

// ServiceStats aggregates operation counters and per-database key counts
// across every provider of the service — the client side of the
// monitoring hook (§V of the paper cites Symbiomon for this role).
type ServiceStats struct {
	Providers int
	Puts      int64
	Gets      int64
	Lists     int64
	Erases    int64
	BulkOps   int64
	// DBCounts maps database name to live key count.
	DBCounts map[string]uint64
}

// ServiceStats scrapes all providers.
func (ds *DataStore) ServiceStats(ctx context.Context) (ServiceStats, error) {
	if ds.closed.Load() {
		return ServiceStats{}, ErrClosed
	}
	agg := ServiceStats{DBCounts: map[string]uint64{}}
	for _, srv := range ds.v().Group.Servers {
		for _, pid := range srv.Providers {
			rs, err := ds.yc.Stats(ctx, fabric.Address(srv.Address), margo.ProviderID(pid))
			if err != nil {
				return agg, fmt.Errorf("hepnos: stats from %s provider %d: %w", srv.Address, pid, err)
			}
			agg.Providers++
			agg.Puts += rs.Puts
			agg.Gets += rs.Gets
			agg.Lists += rs.Lists
			agg.Erases += rs.Erases
			agg.BulkOps += rs.BulkOps
			for name, n := range rs.DBCounts {
				agg.DBCounts[name] += n
			}
		}
	}
	return agg, nil
}
