// Package bedrock is the Go analog of the Mochi Bedrock component: it
// bootstraps a server process from a JSON configuration describing the
// Argobots resources (pools, execution streams), the Mercury/Margo setup
// (address, rpc execution streams) and the list of providers with their
// databases (§II-B of the paper).
//
// The "high degree of configurability" the paper credits for HEPnOS tuning
// is preserved: every knob the evaluation sweeps (providers per process,
// databases per provider, backend type, xstream counts) is a field here.
package bedrock

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/argo"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/health"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
	"github.com/hep-on-hpc/hepnos-go/internal/yokan"
)

// ProcessConfig is the root of a Bedrock JSON document for one server
// process.
type ProcessConfig struct {
	Margo     MargoConfig      `json:"margo"`
	Providers []ProviderConfig `json:"providers"`
	// Storage tunes the process-wide LSM storage tier (block cache size,
	// compaction mode, WAL durability). Nil keeps the defaults; it only
	// matters when some provider serves an "lsm" database.
	Storage *StorageConfig `json:"storage,omitempty"`
}

// StorageConfig is the JSON form of the server's storage-tier setup. One
// block cache and one background-compaction pool are shared by every LSM
// database the process serves.
type StorageConfig struct {
	// BlockCacheMB sizes the shared block cache in MiB (0: 32 MiB).
	BlockCacheMB int `json:"block_cache_mb,omitempty"`
	// DisableBlockCache turns block caching off entirely.
	DisableBlockCache bool `json:"disable_block_cache,omitempty"`
	// MemtableMB is the per-database flush threshold in MiB (0: 4 MiB).
	MemtableMB int `json:"memtable_mb,omitempty"`
	// CompactAt triggers a merge at this table count (0: 6).
	CompactAt int `json:"compact_at,omitempty"`
	// SyncWrites makes writes durable before they are acknowledged.
	SyncWrites bool `json:"sync_writes,omitempty"`
	// DisableGroupCommit forces one fsync per write under SyncWrites
	// instead of batching fsyncs across concurrent writers.
	DisableGroupCommit bool `json:"disable_group_commit,omitempty"`
	// GroupCommitWindowUS is the commit leader's rider-collection window
	// in microseconds (0: the yokan default).
	GroupCommitWindowUS int64 `json:"group_commit_window_us,omitempty"`
	// ForegroundCompaction runs flushes and merges inline on the write
	// path (the pre-storage-tier behaviour; mostly for A/B experiments).
	ForegroundCompaction bool `json:"foreground_compaction,omitempty"`
	// CompactionStreams is the number of execution streams in the storage
	// pool draining flush/compaction jobs (0: 2).
	CompactionStreams int `json:"compaction_streams,omitempty"`
}

// storagePoolName is the dedicated pool for LSM background jobs, kept out
// of the RPC pools so storage I/O never steals request execution streams.
const storagePoolName = "__storage__"

// options materializes the LSM options this config describes.
func (sc *StorageConfig) options() yokan.LSMOptions {
	opts := yokan.DefaultLSMOptions()
	if sc == nil {
		return opts
	}
	if sc.MemtableMB > 0 {
		opts.MemtableBytes = int64(sc.MemtableMB) << 20
	}
	if sc.CompactAt > 1 {
		opts.CompactAt = sc.CompactAt
	}
	opts.SyncWrites = sc.SyncWrites
	opts.GroupCommit = !sc.DisableGroupCommit
	if sc.GroupCommitWindowUS > 0 {
		opts.GroupCommitWindow = time.Duration(sc.GroupCommitWindowUS) * time.Microsecond
	}
	opts.BackgroundCompaction = !sc.ForegroundCompaction
	opts.DisableBlockCache = sc.DisableBlockCache
	return opts
}

// MargoConfig configures the communication and threading layers.
type MargoConfig struct {
	// Address to listen on, e.g. "inproc://server0" or "tcp://0.0.0.0:0".
	Address string `json:"address"`
	// RPCXStreams sets the size of the default round-robin xstream set
	// when Argobots is not given explicitly. The paper uses 16.
	RPCXStreams int `json:"rpc_xstreams"`
	// Argobots optionally spells out pools and xstreams in full.
	Argobots argo.Config `json:"argobots"`
	// NetSim optionally attaches a network cost model (testing only; not
	// part of the original Bedrock schema).
	NetSim *NetSimConfig `json:"netsim,omitempty"`
	// Resilience optionally attaches a retry/backoff/circuit-breaker
	// policy to the server's outgoing calls (bulk pulls back to clients).
	Resilience *ResilienceConfig `json:"resilience,omitempty"`
	// Obs tunes the observability layer (§V monitoring). Nil keeps the
	// defaults: tracing on with the default span buffer, metrics on.
	Obs *ObsConfig `json:"obs,omitempty"`
	// QoS configures the multi-tenant front door: per-tenant WFQ weights
	// and admission rates, queue bound, and class-aware shed thresholds.
	// Nil (or Enabled false) serves every request ungated, as before.
	QoS *QoSConfig `json:"qos,omitempty"`
}

// QoSConfig is the JSON form of a qos.Config — the server's multi-tenant
// admission, fairness and backpressure policy.
type QoSConfig struct {
	// Enabled turns the QoS gate on for all non-reserved providers.
	Enabled bool `json:"enabled"`
	// Default applies to tenants without an explicit entry in Tenants.
	Default qos.TenantConfig `json:"default,omitempty"`
	// Tenants holds per-tenant weight/rate overrides, keyed by tenant.
	Tenants map[string]qos.TenantConfig `json:"tenants,omitempty"`
	// MaxQueue bounds the gate's WFQ backlog (0: qos default of 256).
	MaxQueue int `json:"max_queue,omitempty"`
	// ShedBatchAt / ShedInteractiveAt are the queue-fill fractions where
	// batch and interactive traffic start shedding (defaults 0.5 / 0.9).
	ShedBatchAt       float64 `json:"shed_batch_at,omitempty"`
	ShedInteractiveAt float64 `json:"shed_interactive_at,omitempty"`
	// PressureAt is the fill fraction where pushed backpressure starts
	// rising (default 0.25).
	PressureAt float64 `json:"pressure_at,omitempty"`
}

// Gate materializes the config into a live qos.Config for margo.
func (qc *QoSConfig) Gate() qos.Config {
	if qc == nil {
		return qos.Config{}
	}
	return qos.Config{
		Enabled:           qc.Enabled,
		Default:           qc.Default,
		Tenants:           qc.Tenants,
		MaxQueue:          qc.MaxQueue,
		ShedBatchAt:       qc.ShedBatchAt,
		ShedInteractiveAt: qc.ShedInteractiveAt,
		PressureAt:        qc.PressureAt,
	}
}

// ObsConfig is the JSON form of the process's observability setup. The
// metrics registry is pull-model — it costs nothing until scraped — so it
// is always on; only tracing (which keeps a ring of finished spans) has
// an off switch.
type ObsConfig struct {
	// DisableTracing turns span recording off. Metrics stay on.
	DisableTracing bool `json:"disable_tracing,omitempty"`
	// SpanBuffer is the tracer's ring capacity in spans
	// (0: obs.DefaultSpanBuffer).
	SpanBuffer int `json:"span_buffer,omitempty"`
}

// NewTracer materializes the config into a live tracer (nil when tracing
// is disabled). A nil *ObsConfig yields the default tracer.
func (oc *ObsConfig) NewTracer() *obs.Tracer {
	if oc != nil && oc.DisableTracing {
		return nil
	}
	size := 0
	if oc != nil {
		size = oc.SpanBuffer
	}
	return obs.NewTracer(size)
}

// NetSimConfig is the JSON form of a fabric.NetSim.
type NetSimConfig struct {
	LatencyUS         int64   `json:"latency_us"`
	BandwidthBps      float64 `json:"bandwidth_bps"`
	InjectionBps      float64 `json:"injection_bps"`
	InjectionHardFail bool    `json:"injection_hard_fail"`
}

// ResilienceConfig is the JSON form of a resilience.Policy. Zero fields
// fall back to the resilience package defaults.
type ResilienceConfig struct {
	MaxRetries        int     `json:"max_retries"`
	InitialBackoffUS  int64   `json:"initial_backoff_us"`
	MaxBackoffUS      int64   `json:"max_backoff_us"`
	Jitter            float64 `json:"jitter"`
	PerTryTimeoutUS   int64   `json:"per_try_timeout_us"`
	RetryBudget       float64 `json:"retry_budget"`
	BreakerThreshold  int     `json:"breaker_threshold"`
	BreakerCooldownUS int64   `json:"breaker_cooldown_us"`
}

// Policy materializes the config into a live policy.
func (rc *ResilienceConfig) Policy() *resilience.Policy {
	if rc == nil {
		return nil
	}
	p := &resilience.Policy{
		MaxRetries:     rc.MaxRetries,
		InitialBackoff: time.Duration(rc.InitialBackoffUS) * time.Microsecond,
		MaxBackoff:     time.Duration(rc.MaxBackoffUS) * time.Microsecond,
		Jitter:         rc.Jitter,
		PerTryTimeout:  time.Duration(rc.PerTryTimeoutUS) * time.Microsecond,
	}
	if rc.RetryBudget > 0 {
		p.Budget = resilience.NewBudget(rc.RetryBudget, 0.1)
	}
	if rc.BreakerThreshold > 0 {
		p.Breaker = &resilience.BreakerConfig{
			FailureThreshold: rc.BreakerThreshold,
			Cooldown:         time.Duration(rc.BreakerCooldownUS) * time.Microsecond,
		}
	}
	return p
}

// ProviderConfig declares one provider.
type ProviderConfig struct {
	// Type must be "yokan" (the only provider type HEPnOS uses).
	Type string `json:"type"`
	// Name is informational.
	Name string `json:"name"`
	// ProviderID distinguishes providers on the same endpoint.
	ProviderID uint16 `json:"provider_id"`
	// Pool names the Argobots pool this provider's RPCs execute in;
	// empty selects the primary pool.
	Pool string `json:"pool"`
	// Config holds provider-type-specific settings.
	Config ProviderSpec `json:"config"`
}

// ProviderSpec is the "config" object of a yokan provider.
type ProviderSpec struct {
	Databases []yokan.DBConfig `json:"databases"`
}

// Validate performs structural checks before boot.
func (c *ProcessConfig) Validate() error {
	if c.Margo.Address == "" {
		return fmt.Errorf("bedrock: margo.address is required")
	}
	if len(c.Providers) == 0 {
		return fmt.Errorf("bedrock: at least one provider is required")
	}
	seen := make(map[uint16]bool)
	for i, p := range c.Providers {
		if p.Type != "yokan" {
			return fmt.Errorf("bedrock: provider %d has unsupported type %q", i, p.Type)
		}
		if seen[p.ProviderID] {
			return fmt.Errorf("bedrock: duplicate provider_id %d", p.ProviderID)
		}
		seen[p.ProviderID] = true
		if len(p.Config.Databases) == 0 {
			return fmt.Errorf("bedrock: provider %d has no databases", i)
		}
	}
	return nil
}

// Server is a booted process: a margo instance plus its providers.
type Server struct {
	mi         *margo.Instance
	providers  []*yokan.Provider
	cfg        ProcessConfig
	registry   *obs.Registry
	tracer     *obs.Tracer
	shutdownCh chan struct{}
	janitorCh  chan struct{}

	// Storage tier shared by the process's LSM databases: a block cache
	// and a dedicated background runtime for flush/compaction jobs. Nil
	// when no provider serves an lsm database.
	storageRT    *argo.Runtime
	storageCache *yokan.BlockCache

	// epoch is the membership-view version the server believes it belongs
	// to (set by Deployment, reported by the admin health RPC).
	epoch atomic.Uint64
	// healthView, when attached, supplies the liveness snapshot the admin
	// health RPC publishes (see AttachHealthView).
	healthView atomic.Value // func() []health.TargetStatus
	// rebalanceView, when attached, supplies the live-migration progress
	// the admin rebalance RPC publishes (see AttachRebalanceView).
	rebalanceView atomic.Value // func() RebalanceStatus
}

// setEpoch records the membership epoch the server is part of.
func (s *Server) setEpoch(e uint64) { s.epoch.Store(e) }

// Epoch reports the membership epoch last pushed to the server.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// AttachHealthView wires a liveness snapshot source (typically a
// health.Tracker's Snapshot method) into the server's admin health RPC, so
// operators can scrape the fault-domain view a process has built.
func (s *Server) AttachHealthView(snapshot func() []health.TargetStatus) {
	s.healthView.Store(snapshot)
}

// AttachRebalanceView wires a live-migration progress source (typically an
// autopilot Migrator's Status method) into the server's admin rebalance
// RPC, so operators can watch a topology change move key ranges without
// access to the process driving it.
func (s *Server) AttachRebalanceView(status func() RebalanceStatus) {
	s.rebalanceView.Store(status)
}

// Boot starts a server from the configuration.
func Boot(cfg ProcessConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var sim *fabric.NetSim
	if ns := cfg.Margo.NetSim; ns != nil {
		sim = &fabric.NetSim{
			Latency:           time.Duration(ns.LatencyUS) * time.Microsecond,
			BandwidthBps:      ns.BandwidthBps,
			InjectionBps:      ns.InjectionBps,
			InjectionHardFail: ns.InjectionHardFail,
		}
	}
	policy := cfg.Margo.Resilience.Policy()
	tracer := cfg.Margo.Obs.NewTracer()
	mi, err := margo.Init(margo.Config{
		Address:     fabric.Address(cfg.Margo.Address),
		Argobots:    cfg.Margo.Argobots,
		RPCXStreams: cfg.Margo.RPCXStreams,
		NetSim:      sim,
		Resilience:  policy,
		Tracer:      tracer,
		QoS:         cfg.Margo.QoS.Gate(),
	})
	if err != nil {
		return nil, err
	}
	srv := &Server{
		mi:         mi,
		cfg:        cfg,
		registry:   obs.NewRegistry(),
		tracer:     tracer,
		shutdownCh: make(chan struct{}, 1),
		janitorCh:  make(chan struct{}),
	}
	mi.Endpoint().RegisterMetrics(srv.registry)
	mi.Gate().RegisterMetrics(srv.registry)
	if policy != nil {
		policy.RegisterMetrics(srv.registry)
	}
	if tracer != nil {
		obs.RegisterTracerMetrics(srv.registry, tracer)
	}
	if err := srv.registerAdmin(); err != nil {
		srv.Shutdown()
		return nil, err
	}

	// Stand up the shared storage tier if any provider serves an LSM
	// database: one block cache across all DBs, plus a dedicated argo
	// runtime whose pool drains background flush/compaction jobs (margo's
	// runtime has its pools fixed at init, and storage I/O should not sit
	// in RPC queues anyway).
	var env *yokan.StorageEnv
	if processHasLSM(cfg) {
		sc := cfg.Storage
		opts := sc.options()
		streams := 2
		if sc != nil && sc.CompactionStreams > 0 {
			streams = sc.CompactionStreams
		}
		var acfg argo.Config
		acfg.Pools = []argo.PoolConfig{{Name: storagePoolName, Kind: argo.SchedFIFO}}
		for i := 0; i < streams; i++ {
			acfg.XStreams = append(acfg.XStreams, argo.XStreamConfig{
				Name:  fmt.Sprintf("storage-%d", i),
				Pools: []string{storagePoolName},
			})
		}
		rt, err := argo.NewRuntime(acfg)
		if err != nil {
			srv.Shutdown()
			return nil, fmt.Errorf("bedrock: storage runtime: %w", err)
		}
		srv.storageRT = rt
		if !opts.DisableBlockCache {
			cacheBytes := int64(0)
			if sc != nil {
				cacheBytes = int64(sc.BlockCacheMB) << 20
			}
			srv.storageCache = yokan.NewBlockCache(cacheBytes)
			srv.storageCache.RegisterMetrics(srv.registry)
		}
		env = &yokan.StorageEnv{
			Cache:     srv.storageCache,
			Compactor: yokan.NewCompactor(rt.Pool(storagePoolName)),
			Options:   opts,
		}
	}

	for _, pc := range cfg.Providers {
		var pool *argo.Pool
		if pc.Pool != "" {
			pool = mi.Runtime().Pool(pc.Pool)
			if pool == nil {
				srv.Shutdown()
				return nil, fmt.Errorf("bedrock: provider %q references unknown pool %q", pc.Name, pc.Pool)
			}
		}
		p, err := yokan.NewProviderStorage(mi, margo.ProviderID(pc.ProviderID), pool, pc.Config.Databases, env)
		if err != nil {
			srv.Shutdown()
			return nil, fmt.Errorf("bedrock: provider %q: %w", pc.Name, err)
		}
		p.RegisterMetrics(srv.registry)
		srv.providers = append(srv.providers, p)
	}
	// Bulk-region janitor: reclaim regions abandoned by dead clients
	// (exposed for a get_multi bulk response but never bulk_freed).
	go srv.bulkJanitor()
	return srv, nil
}

// bulkJanitorInterval and bulkRegionMaxAge bound server memory held for
// clients that disappeared mid-transfer.
const (
	bulkJanitorInterval = 30 * time.Second
	bulkRegionMaxAge    = 2 * time.Minute
)

func (s *Server) bulkJanitor() {
	t := time.NewTicker(bulkJanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mi.Endpoint().SweepBulk(bulkRegionMaxAge)
		case <-s.janitorCh:
			return
		}
	}
}

// BootJSON parses a JSON document and boots from it.
func BootJSON(data []byte) (*Server, error) {
	var cfg ProcessConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("bedrock: parse config: %w", err)
	}
	return Boot(cfg)
}

// BootFile reads a JSON configuration file and boots from it.
func BootFile(path string) (*Server, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bedrock: read config: %w", err)
	}
	return BootJSON(data)
}

// Addr returns the server's reachable address.
func (s *Server) Addr() fabric.Address { return s.mi.Addr() }

// Margo exposes the underlying margo instance.
func (s *Server) Margo() *margo.Instance { return s.mi }

// Registry returns the server's metrics registry: fabric breadcrumbs,
// per-provider Yokan aggregates, resilience counters. Never nil.
func (s *Server) Registry() *obs.Registry { return s.registry }

// Tracer returns the server's span tracer (nil when tracing is off).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Providers returns the booted Yokan providers.
func (s *Server) Providers() []*yokan.Provider {
	return append([]*yokan.Provider(nil), s.providers...)
}

// Descriptor summarizes this server for a group file.
func (s *Server) Descriptor() ServerDescriptor {
	d := ServerDescriptor{Address: string(s.Addr())}
	for _, p := range s.providers {
		d.Providers = append(d.Providers, uint16(p.ID()))
	}
	return d
}

// Shutdown stops the server: providers close their databases, then the
// margo instance finalizes. It is safe to call once.
func (s *Server) Shutdown() {
	select {
	case <-s.janitorCh:
	default:
		close(s.janitorCh)
	}
	for _, p := range s.providers {
		p.Close()
	}
	// Databases are closed (each Close waits out its background jobs), so
	// the storage runtime can go down after them.
	if s.storageRT != nil {
		s.storageRT.Shutdown()
	}
	s.mi.Finalize()
}

// processHasLSM reports whether any provider in cfg serves an LSM-backed
// database.
func processHasLSM(cfg ProcessConfig) bool {
	for _, pc := range cfg.Providers {
		for _, db := range pc.Config.Databases {
			if db.Type == "lsm" {
				return true
			}
		}
	}
	return false
}
