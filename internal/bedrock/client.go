package bedrock

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"github.com/hep-on-hpc/hepnos-go/internal/asyncengine"
)

// ClientProcessConfig is the client-side counterpart of ProcessConfig: the
// JSON document a client application loads to connect to a service —
// the "config.json" of hepnos::DataStore::connect. It carries the group
// file location plus the client's tuning knobs, including the AsyncEngine
// pool sizing of §II-D, so async concurrency is deployment configuration
// rather than code.
//
//	{
//	  "group_file": "hepnos.group.json",
//	  "async": {"pools": [
//	    {"name": "rpc", "xstreams": 8, "max_queue": 128},
//	    {"name": "prefetch", "xstreams": 2, "max_queue": 16},
//	    {"name": "ingest", "xstreams": 4, "max_queue": 8}
//	  ]},
//	  "resilience": {"max_retries": 6}
//	}
type ClientProcessConfig struct {
	// GroupFile locates the service descriptor written at deployment.
	GroupFile string `json:"group_file,omitempty"`
	// Address is the client's own endpoint address (empty: automatic).
	Address string `json:"address,omitempty"`
	// EagerLimit overrides the RPC-inline threshold for batch transfers.
	EagerLimit int `json:"eager_limit,omitempty"`
	// Placement names the key placement strategy ("modulo" or "jump").
	Placement string `json:"placement,omitempty"`
	// Async sizes the client's AsyncEngine pools; nil uses the defaults,
	// {"disabled": true} forces every layer synchronous.
	Async *asyncengine.Config `json:"async,omitempty"`
	// Resilience attaches a retry/backoff/breaker policy to client RPCs.
	Resilience *ResilienceConfig `json:"resilience,omitempty"`
	// Obs tunes the client's observability layer; nil keeps the defaults
	// (tracing on, default span buffer).
	Obs *ObsConfig `json:"obs,omitempty"`
	// MinGroupEpoch rejects group files older than this membership epoch —
	// the guard against connecting through a stale view after a rescale or
	// rejoin changed the deployment.
	MinGroupEpoch uint64 `json:"min_group_epoch,omitempty"`
	// Health tunes the client's failure detector; nil keeps the defaults
	// (heartbeats on when RF > 1).
	Health *HealthConfig `json:"health,omitempty"`
	// Tenant is the QoS identity this client's traffic is attributed to
	// on QoS-enabled servers (empty: the shared default tenant).
	Tenant string `json:"tenant,omitempty"`
}

// HealthConfig is the JSON form of the client failure-detector knobs.
type HealthConfig struct {
	// Disabled turns the heartbeat prober off (health then learns about
	// dead servers only from circuit-breaker trips).
	Disabled bool `json:"disabled,omitempty"`
	// ProbeIntervalMS is the heartbeat period in milliseconds (default 500).
	ProbeIntervalMS int `json:"probe_interval_ms,omitempty"`
	// SuspectAfter / DeadAfter are the consecutive-failure thresholds of
	// the health state machine (defaults 1 and 3).
	SuspectAfter int `json:"suspect_after,omitempty"`
	DeadAfter    int `json:"dead_after,omitempty"`
}

// ParseClientConfig decodes a client JSON document, rejecting unknown
// fields so typos fail loudly.
func ParseClientConfig(data []byte) (ClientProcessConfig, error) {
	var c ClientProcessConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return ClientProcessConfig{}, fmt.Errorf("bedrock: parse client config: %w", err)
	}
	return c, nil
}

// ReadClientConfig loads a client JSON document from disk.
func ReadClientConfig(path string) (ClientProcessConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ClientProcessConfig{}, fmt.Errorf("bedrock: read client config: %w", err)
	}
	return ParseClientConfig(data)
}
