package bedrock

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/health"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/yokan"
)

var seq atomic.Int64

func uniq(s string) string { return fmt.Sprintf("%s-%d", s, seq.Add(1)) }

func TestBootFromJSON(t *testing.T) {
	cfg := fmt.Sprintf(`{
	  "margo": {"address": "inproc://%s", "rpc_xstreams": 4},
	  "providers": [
	    {"type": "yokan", "name": "p0", "provider_id": 0,
	     "config": {"databases": [{"name": "events_0"}, {"name": "products_0"}]}},
	    {"type": "yokan", "name": "p1", "provider_id": 1,
	     "config": {"databases": [{"name": "events_1"}]}}
	  ]
	}`, uniq("bedrock-json"))
	srv, err := BootJSON([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if len(srv.Providers()) != 2 {
		t.Fatalf("providers = %d", len(srv.Providers()))
	}

	// A client can reach the booted databases.
	cli, err := margo.Init(margo.Config{Address: fabric.Address("inproc://" + uniq("bedrock-cli"))})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Finalize()
	yc := yokan.NewClient(cli)
	names, _, err := yc.ListDatabases(context.Background(), srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "events_0" {
		t.Fatalf("databases = %v", names)
	}
	db := yokan.DBHandle{Addr: srv.Addr(), Provider: 1, Name: "events_1"}
	if err := yc.Put(context.Background(), db, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestBootFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfg := fmt.Sprintf(`{
	  "margo": {"address": "inproc://%s"},
	  "providers": [{"type": "yokan", "provider_id": 0,
	    "config": {"databases": [{"name": "events_0"}]}}]
	}`, uniq("bedrock-file"))
	if err := writeFile(path, cfg); err != nil {
		t.Fatal(err)
	}
	srv, err := BootFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	if _, err := BootFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func writeFile(path, content string) error {
	return writeFileBytes(path, []byte(content))
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := func() ProcessConfig {
		return ProcessConfig{
			Margo: MargoConfig{Address: "inproc://x"},
			Providers: []ProviderConfig{{
				Type: "yokan", ProviderID: 0,
				Config: ProviderSpec{Databases: []yokan.DBConfig{{Name: "d"}}},
			}},
		}
	}
	cases := []func(*ProcessConfig){
		func(c *ProcessConfig) { c.Margo.Address = "" },
		func(c *ProcessConfig) { c.Providers = nil },
		func(c *ProcessConfig) { c.Providers[0].Type = "warabi" },
		func(c *ProcessConfig) { c.Providers[0].Config.Databases = nil },
		func(c *ProcessConfig) { c.Providers = append(c.Providers, c.Providers[0]) },
	}
	for i, mutate := range cases {
		cfg := good()
		mutate(&cfg)
		if err := (&cfg).Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	gc := good()
	if err := gc.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if _, err := BootJSON([]byte("{nope")); err == nil {
		t.Fatal("bad JSON should error")
	}
	// Unknown pool reference.
	cfg := good()
	cfg.Margo.Address = "inproc://" + uniq("badpool")
	cfg.Providers[0].Pool = "ghost"
	if _, err := Boot(cfg); err == nil || !strings.Contains(err.Error(), "unknown pool") {
		t.Fatalf("unknown pool: %v", err)
	}
}

func TestDeployPaperShape(t *testing.T) {
	d, err := Deploy(DeploySpec{
		Servers:             2,
		ProvidersPerServer:  4,
		EventDBsPerServer:   8,
		ProductDBsPerServer: 8,
		NamePrefix:          uniq("paper"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if len(d.Servers) != 2 || len(d.Group.Servers) != 2 {
		t.Fatalf("deployed %d servers, group %d", len(d.Servers), len(d.Group.Servers))
	}

	// Count databases per role across the whole deployment.
	counts := map[string]int{}
	for _, srv := range d.Servers {
		for _, p := range srv.Providers() {
			for _, name := range p.Databases() {
				role := name[:strings.LastIndex(name, "_")]
				counts[role]++
			}
		}
	}
	want := map[string]int{
		RoleEvents: 16, RoleProducts: 16,
		RoleDatasets: 1, RoleRuns: 2, RoleSubruns: 2,
	}
	for role, n := range want {
		if counts[role] != n {
			t.Errorf("role %s: %d databases, want %d (all: %v)", role, counts[role], n, counts)
		}
	}
}

func TestDeployLSM(t *testing.T) {
	d, err := Deploy(DeploySpec{
		Servers:             1,
		ProvidersPerServer:  2,
		EventDBsPerServer:   2,
		ProductDBsPerServer: 2,
		Backend:             "lsm",
		PathBase:            t.TempDir(),
		NamePrefix:          uniq("lsm"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	// LSM without a path must fail.
	if _, err := Deploy(DeploySpec{Backend: "lsm", NamePrefix: uniq("nolsm")}); err == nil {
		t.Fatal("lsm without PathBase should fail")
	}
}

func TestGroupFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.json")
	g := GroupFile{
		Protocol: "inproc",
		Servers: []ServerDescriptor{
			{Address: "inproc://a", Providers: []uint16{0, 1}},
			{Address: "inproc://b", Providers: []uint16{0}},
		},
	}
	if err := WriteGroupFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGroupFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Servers) != 2 || got.Servers[0].Address != "inproc://a" || got.Servers[0].Providers[1] != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	// Empty group is invalid.
	if err := WriteGroupFile(path, GroupFile{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGroupFile(path); err == nil {
		t.Fatal("empty group should error")
	}
}

func TestDeployTCP(t *testing.T) {
	d, err := Deploy(DeploySpec{
		Servers:             1,
		Scheme:              "tcp",
		ProvidersPerServer:  2,
		EventDBsPerServer:   2,
		ProductDBsPerServer: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if !strings.HasPrefix(string(d.Servers[0].Addr()), "tcp://") {
		t.Fatalf("addr = %s", d.Servers[0].Addr())
	}
	if _, err := Deploy(DeploySpec{Scheme: "quic"}); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestBuildConfigsDeterministic(t *testing.T) {
	spec := DeploySpec{Servers: 3, ProvidersPerServer: 2, EventDBsPerServer: 4, ProductDBsPerServer: 4}
	a, err := BuildConfigs(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildConfigs(spec)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("BuildConfigs is not deterministic")
	}
	if len(a) != 3 {
		t.Fatalf("configs = %d", len(a))
	}
	// Event database indices must be globally unique across servers.
	seen := map[string]bool{}
	for _, cfg := range a {
		for _, p := range cfg.Providers {
			for _, db := range p.Config.Databases {
				if seen[db.Name] {
					t.Fatalf("duplicate database name %q across servers", db.Name)
				}
				seen[db.Name] = true
			}
		}
	}
}

func writeFileBytes(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestAdminPingAndRemoteShutdown(t *testing.T) {
	d, err := Deploy(DeploySpec{
		Servers: 2, ProvidersPerServer: 2,
		EventDBsPerServer: 2, ProductDBsPerServer: 2,
		NamePrefix: uniq("admin"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	cli, err := margo.Init(margo.Config{Address: fabric.Address("inproc://" + uniq("admin-cli"))})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Finalize()
	ctx := context.Background()
	for _, srv := range d.Group.Servers {
		if err := Ping(ctx, cli, fabric.Address(srv.Address)); err != nil {
			t.Fatalf("ping %s: %v", srv.Address, err)
		}
	}
	if err := RemoteShutdown(ctx, cli, d.Group); err != nil {
		t.Fatal(err)
	}
	// Every server observed the request.
	for i, srv := range d.Servers {
		select {
		case <-srv.ShutdownRequested():
		default:
			t.Fatalf("server %d did not receive the shutdown request", i)
		}
	}
	// Shutdown of a dead group errors.
	dead := GroupFile{Servers: []ServerDescriptor{{Address: "inproc://gone"}}}
	if err := RemoteShutdown(ctx, cli, dead); err == nil {
		t.Fatal("shutdown of unreachable server should error")
	}
	if err := Ping(ctx, cli, "inproc://gone"); err == nil {
		t.Fatal("ping of unreachable server should error")
	}
}

func TestPinProvidersMapsPoolsOneToOne(t *testing.T) {
	d, err := Deploy(DeploySpec{
		Servers: 1, ProvidersPerServer: 3,
		EventDBsPerServer: 3, ProductDBsPerServer: 3,
		PinProviders: true,
		NamePrefix:   uniq("pinned"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	srv := d.Servers[0]
	rt := srv.Margo().Runtime()
	if len(rt.Pools()) != 3 || len(rt.XStreams()) != 3 {
		t.Fatalf("pools=%d xstreams=%d, want 3/3", len(rt.Pools()), len(rt.XStreams()))
	}

	// Drive one database on provider 1; only pool_1 should see the work.
	cli, err := margo.Init(margo.Config{Address: fabric.Address("inproc://" + uniq("pin-cli"))})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Finalize()
	yc := yokan.NewClient(cli)
	names, _, err := yc.ListDatabases(context.Background(), srv.Addr(), 1)
	if err != nil || len(names) == 0 {
		t.Fatalf("databases on provider 1: %v %v", names, err)
	}
	db := yokan.DBHandle{Addr: srv.Addr(), Provider: 1, Name: names[0]}
	for i := 0; i < 20; i++ {
		if err := yc.Put(context.Background(), db, []byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Pool("pool_1").Stats().Popped; got < 20 {
		t.Fatalf("pool_1 ran %d tasks, want >= 20", got)
	}
	if got := rt.Pool("pool_0").Stats().Popped; got != 0 {
		t.Fatalf("pool_0 ran %d tasks, want 0", got)
	}
}

func TestDeployEpochAndRF(t *testing.T) {
	d, err := Deploy(DeploySpec{
		Servers: 2, ProvidersPerServer: 2,
		EventDBsPerServer: 2, ProductDBsPerServer: 2,
		RF:         2,
		NamePrefix: uniq("epoch"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if d.Group.Epoch != 1 {
		t.Fatalf("fresh deploy epoch = %d, want 1", d.Group.Epoch)
	}
	if d.Group.RF != 2 || d.Group.ReplicationFactor() != 2 {
		t.Fatalf("group RF = %d", d.Group.RF)
	}
	for i, s := range d.Servers {
		if s.Epoch() != 1 {
			t.Fatalf("server %d epoch = %d, want 1", i, s.Epoch())
		}
	}
	// Bumps are monotone and propagate to every server.
	if got := d.BumpEpoch(); got != 2 {
		t.Fatalf("BumpEpoch = %d, want 2", got)
	}
	for i, s := range d.Servers {
		if s.Epoch() != 2 {
			t.Fatalf("server %d epoch after bump = %d, want 2", i, s.Epoch())
		}
	}
	// A pre-replication group file reads back as RF=1, epoch 0.
	var legacy GroupFile
	if legacy.ReplicationFactor() != 1 {
		t.Fatalf("legacy RF = %d, want 1", legacy.ReplicationFactor())
	}
	// RF larger than the server count is rejected.
	if _, err := Deploy(DeploySpec{Servers: 1, RF: 2, NamePrefix: uniq("epoch-bad")}); err == nil {
		t.Fatal("RF > Servers should fail deploy")
	}
}

func TestGroupFileEpochRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.json")
	g := GroupFile{
		Protocol: "inproc",
		Servers:  []ServerDescriptor{{Address: "inproc://a"}},
		Epoch:    7,
		RF:       2,
	}
	if err := WriteGroupFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGroupFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || got.RF != 2 {
		t.Fatalf("round trip epoch/rf = %d/%d", got.Epoch, got.RF)
	}
}

func TestScrapeHealth(t *testing.T) {
	d, err := Deploy(DeploySpec{
		Servers: 1, ProvidersPerServer: 2,
		EventDBsPerServer: 2, ProductDBsPerServer: 2,
		NamePrefix: uniq("health"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	cli, err := margo.Init(margo.Config{Address: fabric.Address("inproc://" + uniq("health-cli"))})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Finalize()
	ctx := context.Background()
	addr := d.Servers[0].Addr()

	rep, err := ScrapeHealth(ctx, cli, addr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || rep.Address != string(addr) {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Targets) != 0 {
		t.Fatalf("no tracker attached, yet targets = %v", rep.Targets)
	}

	// Attach a liveness view and scrape it back.
	tr := health.NewTracker(health.Config{})
	tr.Watch("inproc://peer-a")
	tr.ReportFailure("inproc://peer-b")
	d.Servers[0].AttachHealthView(tr.Snapshot)
	rep, err = ScrapeHealth(ctx, cli, addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("targets = %+v", rep.Targets)
	}
	if rep.Targets[0].Target != "inproc://peer-a" || rep.Targets[0].State != "alive" {
		t.Fatalf("targets[0] = %+v", rep.Targets[0])
	}
	if rep.Targets[1].Target != "inproc://peer-b" || rep.Targets[1].State != "suspect" {
		t.Fatalf("targets[1] = %+v", rep.Targets[1])
	}
}
