package bedrock

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/hep-on-hpc/hepnos-go/internal/argo"

	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/yokan"
)

// Database naming convention: HEPnOS databases are named "<role>_<index>".
// The connect step classifies databases into container levels by this
// prefix, playing the role of the database tags in real Bedrock configs.
const (
	RoleDatasets = "datasets"
	RoleRuns     = "runs"
	RoleSubruns  = "subruns"
	RoleEvents   = "events"
	RoleProducts = "products"
)

// ServerDescriptor locates one server of a deployed service.
type ServerDescriptor struct {
	Address   string   `json:"address"`
	Providers []uint16 `json:"providers"`
}

// GroupFile is the connection document handed to clients — the analog of
// the SSG group file / connection JSON in DataStore::connect("config.json").
type GroupFile struct {
	Protocol string             `json:"protocol"`
	Servers  []ServerDescriptor `json:"servers"`
	// Epoch is a monotonically increasing membership-view version. It is
	// bumped whenever the deployment changes shape (deploy, rescale, a
	// server rejoining after death), letting clients detect and reject a
	// stale group file instead of silently connecting to an old view.
	Epoch uint64 `json:"epoch,omitempty"`
	// RF is the replication factor: every event/product key is written to
	// its primary database plus RF-1 replicas on distinct servers. 0 or 1
	// means no replication (pre-replication group files read as RF=1).
	RF int `json:"rf,omitempty"`
}

// ReplicationFactor returns the group's effective RF (at least 1).
func (g GroupFile) ReplicationFactor() int {
	if g.RF < 1 {
		return 1
	}
	return g.RF
}

// WriteGroupFile serializes the group to a JSON file.
func WriteGroupFile(path string, g GroupFile) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadGroupFile loads a group from a JSON file.
func ReadGroupFile(path string) (GroupFile, error) {
	var g GroupFile
	data, err := os.ReadFile(path)
	if err != nil {
		return g, fmt.Errorf("bedrock: read group file: %w", err)
	}
	if err := json.Unmarshal(data, &g); err != nil {
		return g, fmt.Errorf("bedrock: parse group file: %w", err)
	}
	if len(g.Servers) == 0 {
		return g, fmt.Errorf("bedrock: group file lists no servers")
	}
	return g, nil
}

// DeploySpec describes a whole HEPnOS service deployment, defaulting to the
// shape used in the paper's evaluation (§IV-D): per server process, 16
// providers each pinned to an execution stream, together serving 8 event
// and 8 product databases; plus dataset/run/subrun databases.
type DeploySpec struct {
	// Servers is the number of server processes.
	Servers int
	// Scheme is "inproc" (default) or "tcp".
	Scheme string
	// ProvidersPerServer maps providers to execution streams 1:1 (paper: 16).
	ProvidersPerServer int
	// EventDBsPerServer and ProductDBsPerServer size the two hot database
	// sets (paper: 8 and 8).
	EventDBsPerServer   int
	ProductDBsPerServer int
	// DatasetDBs, RunDBs and SubrunDBs are service-wide totals, spread
	// round-robin over servers (defaults: 1, max(1,Servers), max(1,Servers)).
	DatasetDBs int
	RunDBs     int
	SubrunDBs  int
	// Backend is "map" (default) or "lsm".
	Backend string
	// PathBase is the storage root for persistent backends.
	PathBase string
	// RPCXStreams per server (paper: 16; default: ProvidersPerServer).
	RPCXStreams int
	// RF is the replication factor recorded in the group file (see
	// GroupFile.RF). Default 1: no replication. RF > Servers is an error.
	RF int
	// PinProviders gives every provider its own Argobots pool and
	// execution stream, the paper's §IV-D mapping ("each mapped to its
	// execution stream to avoid competing for access by multiple
	// execution streams"). Off, all providers share the default pool.
	PinProviders bool
	// NamePrefix distinguishes concurrent inproc deployments.
	NamePrefix string
	// QoS, when non-nil, is copied into every server's process config:
	// each server runs the same multi-tenant front-door policy.
	QoS *QoSConfig
	// Storage, when non-nil, is copied into every server's process config:
	// each server runs the same storage-tier tuning (block cache size,
	// compaction mode, WAL durability). Only meaningful with Backend "lsm".
	Storage *StorageConfig
}

func (s *DeploySpec) applyDefaults() {
	if s.Servers <= 0 {
		s.Servers = 1
	}
	if s.Scheme == "" {
		s.Scheme = "inproc"
	}
	if s.ProvidersPerServer <= 0 {
		s.ProvidersPerServer = 4
	}
	if s.EventDBsPerServer <= 0 {
		s.EventDBsPerServer = 8
	}
	if s.ProductDBsPerServer <= 0 {
		s.ProductDBsPerServer = 8
	}
	if s.DatasetDBs <= 0 {
		// A replicated deployment needs at least RF dataset databases:
		// they are spread round-robin over distinct servers, and with
		// fewer than RF of them the dataset directory would keep a
		// single point of failure no replica walk can route around.
		s.DatasetDBs = 1
		if s.RF > 1 {
			s.DatasetDBs = s.RF
		}
	}
	if s.RunDBs <= 0 {
		s.RunDBs = s.Servers
	}
	if s.SubrunDBs <= 0 {
		s.SubrunDBs = s.Servers
	}
	if s.Backend == "" {
		s.Backend = "map"
	}
	if s.RPCXStreams <= 0 {
		s.RPCXStreams = s.ProvidersPerServer
	}
	if s.NamePrefix == "" {
		s.NamePrefix = "hepnos"
	}
}

// Deployment is a set of running servers plus the group file describing
// them.
type Deployment struct {
	Servers []*Server
	Group   GroupFile
}

// Shutdown stops all servers.
func (d *Deployment) Shutdown() {
	for _, s := range d.Servers {
		s.Shutdown()
	}
}

// Deploy boots a full service in this process.
func Deploy(spec DeploySpec) (*Deployment, error) {
	spec.applyDefaults()
	if spec.Backend == "lsm" && spec.PathBase == "" {
		return nil, fmt.Errorf("bedrock: lsm deployment needs PathBase")
	}
	if spec.RF > spec.Servers {
		return nil, fmt.Errorf("bedrock: RF %d exceeds server count %d", spec.RF, spec.Servers)
	}
	configs, err := BuildConfigs(spec)
	if err != nil {
		return nil, err
	}
	rf := spec.RF
	if rf < 1 {
		rf = 1
	}
	d := &Deployment{Group: GroupFile{Protocol: spec.Scheme, Epoch: 1, RF: rf}}
	for _, cfg := range configs {
		srv, err := Boot(cfg)
		if err != nil {
			d.Shutdown()
			return nil, err
		}
		d.Servers = append(d.Servers, srv)
		d.Group.Servers = append(d.Group.Servers, srv.Descriptor())
	}
	d.syncEpoch()
	return d, nil
}

// BumpEpoch advances the deployment's membership epoch — called when the
// view changes after the initial deploy (rescale, a dead server rejoining)
// — and pushes the new value to every server so their admin health RPC
// reports it. Returns the new epoch.
func (d *Deployment) BumpEpoch() uint64 {
	d.Group.Epoch++
	d.syncEpoch()
	return d.Group.Epoch
}

func (d *Deployment) syncEpoch() {
	for _, s := range d.Servers {
		s.setEpoch(d.Group.Epoch)
	}
}

// BuildConfigs produces the per-process Bedrock configurations for a spec
// without booting them (used by cmd/hepnos-server to print or boot one
// rank's config).
func BuildConfigs(spec DeploySpec) ([]ProcessConfig, error) {
	spec.applyDefaults()
	var out []ProcessConfig
	for srv := 0; srv < spec.Servers; srv++ {
		var addr string
		switch spec.Scheme {
		case "inproc":
			addr = fmt.Sprintf("inproc://%s-server-%d", spec.NamePrefix, srv)
		case "tcp":
			addr = "tcp://127.0.0.1:0"
		default:
			return nil, fmt.Errorf("bedrock: unknown scheme %q", spec.Scheme)
		}
		cfg := ProcessConfig{
			Margo:   MargoConfig{Address: addr, RPCXStreams: spec.RPCXStreams, QoS: spec.QoS},
			Storage: spec.Storage,
		}
		if spec.PinProviders {
			// One pool + one xstream per provider, exactly the paper's
			// provider-to-stream pinning.
			var acfg argo.Config
			for p := 0; p < spec.ProvidersPerServer; p++ {
				pool := fmt.Sprintf("pool_%d", p)
				acfg.Pools = append(acfg.Pools, argo.PoolConfig{Name: pool})
				acfg.XStreams = append(acfg.XStreams, argo.XStreamConfig{
					Name:  fmt.Sprintf("xstream_%d", p),
					Pools: []string{pool},
				})
			}
			cfg.Margo.Argobots = acfg
		}

		// Gather this server's databases: its share of the event/product
		// sets plus any round-robin-assigned dataset/run/subrun databases.
		var dbs []struct {
			role string
			idx  int
		}
		for i := 0; i < spec.EventDBsPerServer; i++ {
			dbs = append(dbs, struct {
				role string
				idx  int
			}{RoleEvents, srv*spec.EventDBsPerServer + i})
		}
		for i := 0; i < spec.ProductDBsPerServer; i++ {
			dbs = append(dbs, struct {
				role string
				idx  int
			}{RoleProducts, srv*spec.ProductDBsPerServer + i})
		}
		addGlobal := func(role string, total int) {
			for i := 0; i < total; i++ {
				if i%spec.Servers == srv {
					dbs = append(dbs, struct {
						role string
						idx  int
					}{role, i})
				}
			}
		}
		addGlobal(RoleDatasets, spec.DatasetDBs)
		addGlobal(RoleRuns, spec.RunDBs)
		addGlobal(RoleSubruns, spec.SubrunDBs)

		// Spread databases over providers round-robin; each provider is
		// the unit that a single execution stream serves.
		perProv := make([][]struct {
			role string
			idx  int
		}, spec.ProvidersPerServer)
		for i, db := range dbs {
			p := i % spec.ProvidersPerServer
			perProv[p] = append(perProv[p], db)
		}
		for p, assigned := range perProv {
			if len(assigned) == 0 {
				continue
			}
			pc := ProviderConfig{
				Type:       "yokan",
				Name:       fmt.Sprintf("yokan_%d_%d", srv, p),
				ProviderID: uint16(p),
			}
			if spec.PinProviders {
				pc.Pool = fmt.Sprintf("pool_%d", p)
			}
			for _, db := range assigned {
				name := fmt.Sprintf("%s_%d", db.role, db.idx)
				dbc := DatabaseConfig(name, spec.Backend, spec.PathBase, srv)
				pc.Config.Databases = append(pc.Config.Databases, dbc)
			}
			cfg.Providers = append(cfg.Providers, pc)
		}
		out = append(out, cfg)
	}
	return out, nil
}

// DatabaseConfig builds one database config following the deployment
// conventions (per-server subdirectory for persistent backends).
func DatabaseConfig(name, backend, pathBase string, server int) yokan.DBConfig {
	cfg := yokan.DBConfig{Name: name, Type: backend}
	if backend == "lsm" {
		cfg.Path = filepath.Join(pathBase, fmt.Sprintf("server-%d", server), name)
	}
	return cfg
}

// Addresses returns the deployed servers' addresses.
func (d *Deployment) Addresses() []fabric.Address {
	out := make([]fabric.Address, len(d.Servers))
	for i, s := range d.Servers {
		out[i] = s.Addr()
	}
	return out
}
