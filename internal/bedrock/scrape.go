package bedrock

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

// The scrape helpers are the client half of the admin monitoring RPCs:
// cmd/hepnos-metrics (and tests) use them to pull a live server's metric
// families, Prometheus text and span ring — the Symbiomon role of §V,
// collection over the same fabric the data path uses.

// ScrapeMetrics fetches a server's metric families.
func ScrapeMetrics(ctx context.Context, mi *margo.Instance, addr fabric.Address) ([]obs.Family, error) {
	resp, err := mi.Forward(ctx, addr, adminService, adminProviderID, adminMetricsJSONRPC, nil)
	if err != nil {
		return nil, fmt.Errorf("bedrock: scrape metrics from %s: %w", addr, err)
	}
	var fams []obs.Family
	if err := json.Unmarshal(resp, &fams); err != nil {
		return nil, fmt.Errorf("bedrock: decode metrics from %s: %w", addr, err)
	}
	return fams, nil
}

// ScrapeProm fetches a server's metrics in Prometheus text exposition.
func ScrapeProm(ctx context.Context, mi *margo.Instance, addr fabric.Address) (string, error) {
	resp, err := mi.Forward(ctx, addr, adminService, adminProviderID, adminMetricsPromRPC, nil)
	if err != nil {
		return "", fmt.Errorf("bedrock: scrape prom from %s: %w", addr, err)
	}
	return string(resp), nil
}

// ScrapeSpans fetches a server's buffered finished spans, oldest first.
// Servers with tracing disabled return an empty slice.
func ScrapeSpans(ctx context.Context, mi *margo.Instance, addr fabric.Address) ([]obs.Span, error) {
	resp, err := mi.Forward(ctx, addr, adminService, adminProviderID, adminSpansRPC, nil)
	if err != nil {
		return nil, fmt.Errorf("bedrock: scrape spans from %s: %w", addr, err)
	}
	var spans []obs.Span
	if err := json.Unmarshal(resp, &spans); err != nil {
		return nil, fmt.Errorf("bedrock: decode spans from %s: %w", addr, err)
	}
	return spans, nil
}

// ScrapeHealth fetches a server's health report: the membership epoch it
// believes it belongs to and its attached liveness view (if any).
func ScrapeHealth(ctx context.Context, mi *margo.Instance, addr fabric.Address) (HealthReport, error) {
	resp, err := mi.Forward(ctx, addr, adminService, adminProviderID, adminHealthRPC, nil)
	if err != nil {
		return HealthReport{}, fmt.Errorf("bedrock: scrape health from %s: %w", addr, err)
	}
	var rep HealthReport
	if err := json.Unmarshal(resp, &rep); err != nil {
		return HealthReport{}, fmt.Errorf("bedrock: decode health from %s: %w", addr, err)
	}
	return rep, nil
}

// ScrapeSource fetches one server's metrics and spans as a report source.
func ScrapeSource(ctx context.Context, mi *margo.Instance, addr fabric.Address) (obs.Source, error) {
	fams, err := ScrapeMetrics(ctx, mi, addr)
	if err != nil {
		return obs.Source{}, err
	}
	spans, err := ScrapeSpans(ctx, mi, addr)
	if err != nil {
		return obs.Source{}, err
	}
	return obs.Source{Name: string(addr), Families: fams, Spans: spans}, nil
}

// ScrapeGroup fetches every server of a deployment. Unreachable servers
// fail the scrape — a monitoring tool that silently skips a server would
// mis-report the service.
func ScrapeGroup(ctx context.Context, mi *margo.Instance, group GroupFile) ([]obs.Source, error) {
	var out []obs.Source
	for _, srv := range group.Servers {
		src, err := ScrapeSource(ctx, mi, fabric.Address(srv.Address))
		if err != nil {
			return nil, err
		}
		out = append(out, src)
	}
	return out, nil
}

// ScrapeRebalance fetches one server's live-migration progress view.
func ScrapeRebalance(ctx context.Context, mi *margo.Instance, addr fabric.Address) (RebalanceStatus, error) {
	resp, err := mi.Forward(ctx, addr, adminService, adminProviderID, adminRebalanceRPC, nil)
	if err != nil {
		return RebalanceStatus{}, fmt.Errorf("bedrock: scrape rebalance from %s: %w", addr, err)
	}
	var st RebalanceStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		return RebalanceStatus{}, fmt.Errorf("bedrock: decode rebalance from %s: %w", addr, err)
	}
	return st, nil
}
