package bedrock

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/health"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

// The admin provider gives operators remote control of a server process —
// the role of the hepnos-shutdown utility in the real HEPnOS distribution.
// It is registered at Boot on provider id 65535 under the "admin" service.
const (
	adminService         = "admin"
	adminProviderID      = margo.ProviderID(65535)
	adminShutdownRPC     = "shutdown"
	adminPingRPC         = "ping"
	adminMetricsJSONRPC  = "metrics_json"
	adminMetricsPromRPC  = "metrics_prom"
	adminSpansRPC        = "spans"
	adminHealthRPC       = "health"
	adminRebalanceRPC    = "rebalance"
	adminShutdownTimeout = "bye"
)

// RebalanceStatus is the admin rebalance RPC's payload: where a live
// topology change currently stands. Servers report the zero value until an
// autopilot attaches its progress view.
type RebalanceStatus struct {
	// Active is true while a migration window is open.
	Active bool `json:"active"`
	// Phase names the state-machine step ("idle", "plan", "copy",
	// "verify", "commit", "retire", "aborted", "done").
	Phase string `json:"phase"`
	// Epoch is the membership epoch the reporting view is committed to.
	Epoch uint64 `json:"epoch"`
	// RangesTotal and RangesMoved count (role, database) source ranges
	// walked by the copy pass — the operator-facing progress fraction.
	RangesTotal int64 `json:"ranges_total"`
	RangesMoved int64 `json:"ranges_moved"`
	// KeysCopied counts key copies landed on target databases so far.
	KeysCopied int64 `json:"keys_copied"`
	// LastError carries the most recent step failure ("" when clean).
	LastError string `json:"last_error,omitempty"`
}

// HealthReport is the admin health RPC's payload: which membership epoch
// the server believes it is part of, plus the liveness view attached to the
// process (empty when no tracker is wired in).
type HealthReport struct {
	Address string                `json:"address"`
	Epoch   uint64                `json:"epoch"`
	Targets []health.TargetStatus `json:"targets,omitempty"`
}

// registerAdmin installs the admin RPCs on a booted server.
func (s *Server) registerAdmin() error {
	handlers := map[string]fabric.Handler{
		adminPingRPC: func(context.Context, *fabric.Request) ([]byte, error) {
			return []byte("pong"), nil
		},
		adminShutdownRPC: func(context.Context, *fabric.Request) ([]byte, error) {
			// Acknowledge first; the actual teardown runs asynchronously
			// so the RPC response can leave the process.
			select {
			case s.shutdownCh <- struct{}{}:
			default: // already requested
			}
			return []byte(adminShutdownTimeout), nil
		},
		// The monitoring endpoints of §V: a structured snapshot for tools,
		// the Prometheus text exposition for standard scrapers, and the
		// tracer's span ring for cross-process linkage analysis.
		adminMetricsJSONRPC: func(context.Context, *fabric.Request) ([]byte, error) {
			return json.Marshal(s.registry.Snapshot())
		},
		adminMetricsPromRPC: func(context.Context, *fabric.Request) ([]byte, error) {
			return []byte(obs.PromText(s.registry.Snapshot())), nil
		},
		adminSpansRPC: func(context.Context, *fabric.Request) ([]byte, error) {
			return json.Marshal(s.tracer.Snapshot())
		},
		adminHealthRPC: func(context.Context, *fabric.Request) ([]byte, error) {
			rep := HealthReport{Address: string(s.mi.Addr()), Epoch: s.Epoch()}
			if fn, ok := s.healthView.Load().(func() []health.TargetStatus); ok && fn != nil {
				rep.Targets = fn()
			}
			return json.Marshal(rep)
		},
		adminRebalanceRPC: func(context.Context, *fabric.Request) ([]byte, error) {
			st := RebalanceStatus{Phase: "idle", Epoch: s.Epoch()}
			if fn, ok := s.rebalanceView.Load().(func() RebalanceStatus); ok && fn != nil {
				st = fn()
			}
			return json.Marshal(st)
		},
	}
	_, err := s.mi.RegisterProvider(adminService, adminProviderID, nil, handlers)
	return err
}

// ShutdownRequested returns a channel that receives one value when a
// remote shutdown RPC arrives. Server owners (cmd/hepnos-server) select on
// it alongside OS signals.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdownCh }

// RemoteShutdown asks every server in the group to shut down, using the
// given margo instance as the client endpoint. It is best-effort: servers
// co-located in one process stop together when the first acknowledges, so
// later sends may find their peers already gone. An error is returned only
// when no server acknowledged at all.
func RemoteShutdown(ctx context.Context, mi *margo.Instance, group GroupFile) error {
	var firstErr error
	acked := 0
	for _, srv := range group.Servers {
		_, err := mi.Forward(ctx, fabric.Address(srv.Address), adminService, adminProviderID, adminShutdownRPC, nil)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("bedrock: shutdown %s: %w", srv.Address, err)
			}
			continue
		}
		acked++
	}
	if acked > 0 {
		return nil
	}
	return firstErr
}

// Ping checks that a server's admin provider is alive.
func Ping(ctx context.Context, mi *margo.Instance, addr fabric.Address) error {
	resp, err := mi.Forward(ctx, addr, adminService, adminProviderID, adminPingRPC, nil)
	if err != nil {
		return err
	}
	if string(resp) != "pong" {
		return fmt.Errorf("bedrock: unexpected ping response %q from %s", resp, addr)
	}
	return nil
}
