package chash

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	f := func(b []byte) bool { return Hash64(b) == Hash64(append([]byte(nil), b...)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one bit of a short key should flip roughly half the output
	// bits on average. Accept a generous band; this guards against
	// accidentally weakening the finalizer.
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	base := Hash64(key)
	total := 0
	n := 0
	for i := range key {
		for bit := 0; bit < 8; bit++ {
			mod := append([]byte(nil), key...)
			mod[i] ^= 1 << bit
			diff := base ^ Hash64(mod)
			total += popcount64(diff)
			n++
		}
	}
	avg := float64(total) / float64(n)
	if avg < 24 || avg > 40 {
		t.Fatalf("average flipped bits = %.1f, want ~32", avg)
	}
}

func popcount64(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestModuloBalance(t *testing.T) {
	const n, keys = 8, 40000
	m := Modulo{N: n}
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[m.Place([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	assertBalanced(t, counts, keys, 0.10)
}

func TestJumpBalance(t *testing.T) {
	const n, keys = 8, 40000
	j := Jump{N: n}
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[j.Place([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	assertBalanced(t, counts, keys, 0.10)
}

func TestJumpMonotoneStability(t *testing.T) {
	// Jump hash guarantee: growing targets moves keys only to the new
	// target, never between existing ones.
	const keys = 5000
	for n := 1; n < 12; n++ {
		a, b := Jump{N: n}, Jump{N: n + 1}
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("k%d", i))
			pa, pb := a.Place(k), b.Place(k)
			if pa != pb && pb != n {
				t.Fatalf("n=%d key %s moved %d -> %d (not the new target)", n, k, pa, pb)
			}
		}
	}
}

func assertBalanced(t *testing.T, counts []int, keys int, tol float64) {
	t.Helper()
	expect := float64(keys) / float64(len(counts))
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > tol*expect {
			t.Fatalf("target %d has %d keys, expected %.0f ± %.0f%%: %v",
				i, c, expect, tol*100, counts)
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 32); err == nil {
		t.Error("empty members should error")
	}
	if _, err := NewRing([]string{"a"}, 0); err == nil {
		t.Error("zero vnodes should error")
	}
	if _, err := NewRing([]string{"a", "a"}, 4); err == nil {
		t.Error("duplicate members should error")
	}
}

func TestRingDeterministicLookup(t *testing.T) {
	r1, err := NewRing([]string{"s0", "s1", "s2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing([]string{"s0", "s1", "s2"}, 64)
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%d", i))
		if r1.Lookup(k) != r2.Lookup(k) {
			t.Fatalf("rings disagree on %s", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("server%d", i)
	}
	r, err := NewRing(members, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(members))
	const keys = 40000
	for i := 0; i < keys; i++ {
		counts[r.LookupIndex([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	// Rings with 128 vnodes are balanced within ~±30%.
	assertBalanced(t, counts, keys, 0.35)
}

func TestRingStabilityUnderGrowth(t *testing.T) {
	// Adding one member should move roughly 1/(n+1) of the keys.
	base := []string{"s0", "s1", "s2", "s3"}
	r1, _ := NewRing(base, 128)
	r2, _ := NewRing(append(append([]string(nil), base...), "s4"), 128)
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if r1.Lookup(k) != r2.Lookup(k) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.35 {
		t.Fatalf("growth moved %.0f%% of keys, want ~20%%", frac*100)
	}
	if frac == 0 {
		t.Fatal("growth moved no keys at all")
	}
}

func TestRingPlacerInterface(t *testing.T) {
	r, _ := NewRing([]string{"a", "b"}, 16)
	var p Placer = r
	if p.Targets() != 2 {
		t.Fatalf("Targets = %d", p.Targets())
	}
	if got := p.Place([]byte("x")); got < 0 || got > 1 {
		t.Fatalf("Place out of range: %d", got)
	}
}

func TestHash64SeedFamilies(t *testing.T) {
	// Different seeds produce independent hash functions (used by bloom
	// filters): same key, different seeds → mostly different values, and
	// the same seed is deterministic.
	key := []byte("bloom-key")
	if Hash64Seed(key, 1) != Hash64Seed(key, 1) {
		t.Fatal("seeded hash not deterministic")
	}
	seen := map[uint64]bool{}
	for s := uint64(0); s < 64; s++ {
		seen[Hash64Seed(key, s)] = true
	}
	if len(seen) < 60 {
		t.Fatalf("seed family collides too much: %d distinct of 64", len(seen))
	}
}

func TestPlacerTargets(t *testing.T) {
	if (Modulo{N: 5}).Targets() != 5 || (Jump{N: 7}).Targets() != 7 {
		t.Fatal("Targets wrong")
	}
	r, _ := NewRing([]string{"a", "b", "c"}, 8)
	if got := r.Members(); len(got) != 3 || got[0] != "a" {
		t.Fatalf("Members = %v", got)
	}
	// Mutating the returned slice must not affect the ring.
	got := r.Members()
	got[0] = "mutated"
	if r.Members()[0] != "a" {
		t.Fatal("Members returned internal storage")
	}
}

func TestRingSuccessors(t *testing.T) {
	r, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		succ := r.Successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%s, 2) = %v", k, succ)
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("Successors[0] = %s, Lookup = %s", succ[0], r.Lookup(k))
		}
		if succ[0] == succ[1] {
			t.Fatalf("Successors not distinct: %v", succ)
		}
	}
	// rf beyond the member count returns each member exactly once.
	all := r.Successors([]byte("x"), 99)
	if len(all) != 4 {
		t.Fatalf("Successors(rf=99) = %v", all)
	}
	seen := map[string]bool{}
	for _, m := range all {
		if seen[m] {
			t.Fatalf("duplicate member in %v", all)
		}
		seen[m] = true
	}
	if r.Successors([]byte("x"), 0) != nil {
		t.Fatal("rf=0 should return nil")
	}
	// Successor indices agree with names.
	idx := r.SuccessorIndexes([]byte("x"), 3)
	names := r.Successors([]byte("x"), 3)
	for i := range idx {
		if r.Members()[idx[i]] != names[i] {
			t.Fatalf("index/name mismatch at %d: %v vs %v", i, idx, names)
		}
	}
}

func TestRingRemoveStability(t *testing.T) {
	members := []string{"s0", "s1", "s2", "s3", "s4"}
	r1, err := NewRing(members, 128)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r1.Remove("s2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Members()) != 4 {
		t.Fatalf("Members after Remove = %v", r2.Members())
	}
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		before, after := r1.Lookup(k), r2.Lookup(k)
		if before == "s2" {
			// Keys owned by the removed member must move to the member the
			// original ring would have failed over to.
			succ := r1.Successors(k, 2)
			if after != succ[1] {
				t.Fatalf("key %s moved to %s, want successor %s", k, after, succ[1])
			}
			moved++
			continue
		}
		// Every other key must be unaffected by the removal.
		if after != before {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys at all")
	}
	frac := float64(moved) / keys
	if frac > 0.45 {
		t.Fatalf("removal moved %.0f%% of keys, want ~20%%", frac*100)
	}
}

func TestRingRemoveErrors(t *testing.T) {
	r, _ := NewRing([]string{"a", "b"}, 8)
	if _, err := r.Remove("zzz"); err == nil {
		t.Error("removing unknown member should error")
	}
	r2, err := r.Remove("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Remove("b"); err == nil {
		t.Error("removing last member should error")
	}
	// The source ring is untouched (immutability).
	if len(r.Members()) != 2 {
		t.Fatalf("Remove mutated source ring: %v", r.Members())
	}
}

func TestPlacePanicsOnEmpty(t *testing.T) {
	for _, f := range []func(){
		func() { Modulo{}.Place([]byte("k")) },
		func() { Jump{}.Place([]byte("k")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic for zero targets")
				}
			}()
			f()
		}()
	}
}
