// Package chash provides the hashing and consistent-hashing machinery used
// by HEPnOS to place container and product keys onto database instances
// (§II-C3 of the paper).
//
// The location of a container key is selected by hashing its parent's key;
// the location of a product key by hashing its container key. This keeps all
// direct children of a container in one database so that listing them is a
// single-iterator prefix scan, and it batches product reads for one
// container onto one server.
package chash

import (
	"fmt"
	"sort"
)

// Hash64 computes a 64-bit hash of the key. It is an XXH64-style mix: FNV-1a
// over the bytes followed by a SplitMix64 finalizer to improve avalanche
// behaviour of short keys (container keys differ only in a few bytes).
func Hash64(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	// SplitMix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Hash64Seed computes a seeded variant of Hash64 for callers that need a
// family of independent hash functions (e.g. bloom filters).
func Hash64Seed(key []byte, seed uint64) uint64 {
	h := Hash64(key)
	h ^= seed + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 29
	h *= 0xff51afd7ed558ccd
	h ^= h >> 32
	return h
}

// Placer selects one of n targets for a key. HEPnOS uses it to pick a
// database index from a key; implementations must be deterministic.
type Placer interface {
	// Place returns a target index in [0, Targets()).
	Place(key []byte) int
	// Targets returns the number of configured targets.
	Targets() int
}

// Modulo is the simplest placer: hash mod n. It is cheap and perfectly
// balanced but remaps nearly all keys when n changes; HEPnOS's database
// count is fixed for the lifetime of a datastore, so this is the default.
type Modulo struct{ N int }

// Place implements Placer.
func (m Modulo) Place(key []byte) int {
	if m.N <= 0 {
		panic("chash: Modulo with no targets")
	}
	return int(Hash64(key) % uint64(m.N))
}

// Targets implements Placer.
func (m Modulo) Targets() int { return m.N }

// Jump implements Lamping & Veach's jump consistent hash. It moves only
// ~1/(n+1) of keys when growing from n to n+1 targets, with no memory cost.
// Used by the storage-rescaling ablation (the paper cites Pufferscale as
// future work on elastic HEPnOS deployments).
type Jump struct{ N int }

// Place implements Placer.
func (j Jump) Place(key []byte) int {
	if j.N <= 0 {
		panic("chash: Jump with no targets")
	}
	k := Hash64(key)
	var b, next int64 = -1, 0
	for next < int64(j.N) {
		b = next
		k = k*2862933555777941757 + 1
		next = int64(float64(b+1) * (float64(int64(1)<<31) / float64((k>>33)+1)))
	}
	return int(b)
}

// Targets implements Placer.
func (j Jump) Targets() int { return j.N }

// Ring is a classic consistent-hash ring with virtual nodes. Members are
// named (e.g. "server3/db5"); Lookup maps a key to a member. The ring is
// immutable after construction; build a new one to add or remove members.
type Ring struct {
	points  []ringPoint
	members []string
	index   map[string]int
	vnodes  int
}

type ringPoint struct {
	hash   uint64
	member int
}

// NewRing builds a ring with the given members, each replicated at vnodes
// positions. It returns an error for an empty member list, duplicate names,
// or vnodes < 1.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("chash: ring needs at least one member")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("chash: vnodes must be >= 1, got %d", vnodes)
	}
	r := &Ring{
		members: append([]string(nil), members...),
		index:   make(map[string]int, len(members)),
		points:  make([]ringPoint, 0, len(members)*vnodes),
		vnodes:  vnodes,
	}
	for i, m := range r.members {
		if _, dup := r.index[m]; dup {
			return nil, fmt.Errorf("chash: duplicate ring member %q", m)
		}
		r.index[m] = i
		for v := 0; v < vnodes; v++ {
			h := Hash64([]byte(fmt.Sprintf("%s#%d", m, v)))
			r.points = append(r.points, ringPoint{hash: h, member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return pa.member < pb.member
	})
	return r, nil
}

// Lookup returns the member owning the key.
func (r *Ring) Lookup(key []byte) string {
	return r.members[r.LookupIndex(key)]
}

// LookupIndex returns the index (into the construction member list) of the
// member owning the key.
func (r *Ring) LookupIndex(key []byte) int {
	h := Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Successors returns up to rf distinct members encountered walking the ring
// clockwise from the key's position. The first element is always Lookup(key);
// the remainder are the key's natural failover targets (successor-walk
// replica placement, as in Dynamo-style stores). If rf exceeds the member
// count, every member is returned once.
func (r *Ring) Successors(key []byte, rf int) []string {
	idx := r.SuccessorIndexes(key, rf)
	if len(idx) == 0 {
		return nil
	}
	out := make([]string, len(idx))
	for i, m := range idx {
		out[i] = r.members[m]
	}
	return out
}

// SuccessorIndexes is Successors returning member indices (into the
// construction member list) instead of names.
func (r *Ring) SuccessorIndexes(key []byte, rf int) []int {
	if rf < 1 {
		return nil
	}
	if rf > len(r.members) {
		rf = len(r.members)
	}
	h := Hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, rf)
	seen := make(map[int]bool, rf)
	for step := 0; step < len(r.points) && len(out) < rf; step++ {
		m := r.points[(start+step)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Remove returns a new ring without the named member. Lookups for keys not
// owned by the removed member are unchanged (its vnode positions simply
// disappear and its arcs fall to their successors); keys it owned move to
// the member that Successors would have named next. Member indices in the
// new ring follow the surviving construction order. Removing the last member
// or an unknown member is an error.
func (r *Ring) Remove(member string) (*Ring, error) {
	if _, ok := r.index[member]; !ok {
		return nil, fmt.Errorf("chash: ring has no member %q", member)
	}
	if len(r.members) == 1 {
		return nil, fmt.Errorf("chash: cannot remove last ring member %q", member)
	}
	rest := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	return NewRing(rest, r.vnodes)
}

// Members returns the ring's member names in construction order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Place implements Placer using the ring's member indices.
func (r *Ring) Place(key []byte) int { return r.LookupIndex(key) }

// Targets implements Placer.
func (r *Ring) Targets() int { return len(r.members) }
