package chash

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingRemoveMigrationMinimality is the property behind live draining: a
// consistent-hash ring must move ONLY the keys the removed member held.
// For a random ring and random keys, after Remove(m):
//
//   - RF=1: a key not owned by m keeps its owner; a key owned by m lands on
//     exactly the member the old ring's successor walk named next.
//   - RF=2: a key's replica set is the old RF+1 successor walk with m
//     filtered out — members that never touched m keep both replicas, and a
//     set that contained m replaces only m, with the old third-in-line.
//
// A placer without this property (Modulo is the counterexample, asserted
// below) would turn every drain into a full-cluster reshuffle.
func TestRingRemoveMigrationMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const keysPerRing = 400
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)   // 2..9 members
		vn := 1 + rng.Intn(64) // 1..64 vnodes
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("srv%d/db%d", trial, i)
		}
		ring, err := NewRing(members, vn)
		if err != nil {
			t.Fatal(err)
		}
		victim := members[rng.Intn(n)]
		shrunk, err := ring.Remove(victim)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(shrunk.Members()); got != n-1 {
			t.Fatalf("trial %d: shrunk ring has %d members, want %d", trial, got, n-1)
		}

		moved := 0
		for k := 0; k < keysPerRing; k++ {
			key := []byte(fmt.Sprintf("run_%d/subrun_%d", rng.Uint64(), rng.Uint64()))

			// RF=1: only the victim's keys migrate, each to its old
			// next-in-line.
			oldOwner := ring.Lookup(key)
			newOwner := shrunk.Lookup(key)
			if oldOwner != victim {
				if newOwner != oldOwner {
					t.Fatalf("trial %d: key not owned by victim moved %s -> %s", trial, oldOwner, newOwner)
				}
			} else {
				moved++
				if heir := ring.Successors(key, 2); len(heir) != 2 || newOwner != heir[1] {
					t.Fatalf("trial %d: victim's key went to %s, want successor %v", trial, newOwner, heir)
				}
			}

			// RF=2 (and the victim-free prefix at any rf): the new walk is
			// the old rf+1 walk with the victim deleted.
			for _, rf := range []int{1, 2} {
				want := make([]string, 0, rf)
				for _, m := range ring.Successors(key, rf+1) {
					if m != victim && len(want) < rf {
						want = append(want, m)
					}
				}
				got := shrunk.Successors(key, rf)
				if len(got) != len(want) {
					t.Fatalf("trial %d rf=%d: successors %v, want %v", trial, rf, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d rf=%d: successors %v, want %v", trial, rf, got, want)
					}
				}
			}
		}
		// The victim owns ~1/n of the space; a drain that moved half the
		// keyspace would be a reshuffle, not a migration. 3x the fair share
		// leaves room for small-vnode variance without letting a broken
		// ring pass.
		if limit := 3 * keysPerRing / n; moved > limit {
			t.Fatalf("trial %d: drain moved %d/%d keys (limit %d for n=%d, vnodes=%d)",
				trial, moved, keysPerRing, limit, n, vn)
		}
	}
}

// TestModuloRemapsOnResize documents why the migrator cannot use Modulo
// placement for per-key ownership across a resize: dropping one target
// remaps roughly (n-1)/n of all keys, so the ring (or the layout rules in
// bedrock.BuildConfigs that pin whole databases) must be used instead.
func TestModuloRemapsOnResize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, keys = 8, 2000
	moved := 0
	for k := 0; k < keys; k++ {
		key := []byte(fmt.Sprintf("ev_%d", rng.Uint64()))
		if (Modulo{N: n}).Place(key) != (Modulo{N: n - 1}).Place(key) {
			moved++
		}
	}
	// Expect ~ (n-1)/n = 87.5% moved; assert well above the ring's bound.
	if moved < keys/2 {
		t.Fatalf("modulo moved only %d/%d keys on resize; expected a near-total remap", moved, keys)
	}
}
