// Package qos is the multi-tenant front door of the stack: per-tenant
// identity riding the fabric RPC envelope (next to the obs span context),
// token-bucket admission with class-aware load shedding, weighted fair
// queueing across tenants in front of the server's Argobots pools, and a
// server-push backpressure signal carried in the RPC reply envelope.
//
// The paper's §IV-E saturation results show the service is throughput-bound
// exactly when many concurrent clients pile on; nothing in the Mochi stack
// protects the service from its *clients* — one greedy bulk ingest can
// starve every interactive analysis read. This package adds the serving
// tier that ServiceX-style delivery services put in front of HEP storage:
//
//   - Identity: every RPC carries a tenant name and a traffic class
//     (interactive read vs batched ingest). The client endpoint stamps a
//     default tenant; core-layer paths override the class per operation
//     (WriteBatch flushes are batch, prefetch/cursor/load are interactive).
//   - Admission: a per-tenant token bucket meters offered load. When the
//     bucket is dry or queue thresholds trip, requests are shed with a
//     *typed* rejection (ShedError) — never a timeout — and batch traffic
//     is always shed before interactive traffic.
//   - Scheduling: admitted requests enter a weighted-fair queue; the
//     provider's Argobots streams drain tenants in proportion to their
//     configured weights, so a backlog from one tenant cannot monopolize
//     execution.
//   - Backpressure: the gate derives a pressure level (0..255) from its
//     queue depth; the server pushes it in every reply envelope and the
//     client's asyncengine honors it by shrinking its ingest slot
//     semaphore, slowing the producer at the source.
//
// The package sits below fabric (it imports only the standard library and
// obs), mirroring how obs.SpanContext crosses the wire.
package qos

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
)

// Class is the traffic class of one request — the unit of the shedding
// order: under pressure, batch is rejected before interactive.
type Class uint8

// Traffic classes. The zero value means "untagged" and is treated as
// interactive (the safe default: untagged traffic is never shed first).
const (
	ClassUnknown     Class = 0
	ClassInteractive Class = 1
	ClassBatch       Class = 2
)

// String renders the class for metrics labels and error messages.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	default:
		return "unknown"
	}
}

// DefaultTenant is the identity assigned to traffic from clients that
// configured no tenant — pre-QoS clients keep working, grouped under one
// shared identity.
const DefaultTenant = "default"

// Identity is who a request belongs to and what kind of traffic it is.
// It crosses the wire in the fabric request envelope.
type Identity struct {
	Tenant string
	Class  Class
}

// ctxKey carries an Identity through a context.
type ctxKey struct{}

// ContextWithIdentity returns a context carrying id, so the fabric layer
// stamps it into every outgoing RPC envelope.
func ContextWithIdentity(ctx context.Context, id Identity) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// IdentityFromContext returns the identity carried by ctx, or the zero
// identity when none is set.
func IdentityFromContext(ctx context.Context) Identity {
	if ctx == nil {
		return Identity{}
	}
	id, _ := ctx.Value(ctxKey{}).(Identity)
	return id
}

// WithClass tags ctx's identity with a traffic class, preserving any
// tenant already present. Core-layer paths use it to mark their RPCs:
// WriteBatch flushes and bulk ingest are ClassBatch, prefetch/cursor/load
// fan-outs are ClassInteractive.
func WithClass(ctx context.Context, c Class) context.Context {
	id := IdentityFromContext(ctx)
	if id.Class == c {
		return ctx
	}
	id.Class = c
	return ContextWithIdentity(ctx, id)
}

// ShedError is the typed rejection of admission control: the server
// explicitly refused the request before running it. It is not a transport
// failure (re-sending immediately is pointless — the server is telling
// the client to back off) and not an application error (the handler never
// ran); resilience policies must not burn retries on it.
type ShedError struct {
	Tenant string
	Class  Class
	Reason string
}

// Error implements the error interface.
func (e *ShedError) Error() string {
	return fmt.Sprintf("qos: request shed (tenant=%s class=%s): %s", e.Tenant, e.Class, e.Reason)
}

// ErrClass places ShedError on the xerr taxonomy: class "shed". Retry and
// failover policies key off the class (a shed is never retried — the
// server is explicitly telling the client to back off), and the
// hepnos_errors_total metric counts it under its own label.
func (e *ShedError) ErrClass() xerr.Class { return xerr.ClassShed }

// IsShed reports whether err is (or wraps) a typed admission rejection.
func IsShed(err error) bool {
	var shed *ShedError
	return errors.As(err, &shed)
}

// AppendWire encodes the shed error for the fabric reply envelope:
// u8 class, u16 tenant length, tenant bytes, reason bytes.
func (e *ShedError) AppendWire(b []byte) []byte {
	b = append(b, byte(e.Class))
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(e.Tenant)))
	b = append(b, l[:]...)
	b = append(b, e.Tenant...)
	b = append(b, e.Reason...)
	return b
}

// ParseShedWire decodes a shed-error payload produced by AppendWire. A
// malformed payload yields a ShedError with the raw bytes as reason, so a
// shed never degrades into an untyped failure.
func ParseShedWire(b []byte) *ShedError {
	if len(b) < 3 {
		return &ShedError{Tenant: DefaultTenant, Reason: string(b)}
	}
	cls := Class(b[0])
	tl := int(binary.LittleEndian.Uint16(b[1:3]))
	if len(b) < 3+tl {
		return &ShedError{Tenant: DefaultTenant, Class: cls, Reason: string(b[3:])}
	}
	return &ShedError{
		Tenant: string(b[3 : 3+tl]),
		Class:  cls,
		Reason: string(b[3+tl:]),
	}
}
