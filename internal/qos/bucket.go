package qos

import "time"

// TokenBucket meters one tenant's offered load: Rate tokens accrue per
// second up to Burst, and each admitted request spends its cost. The
// clock is injectable so the property suite and the chaos harness drive
// it deterministically — no sleeps, no wall-clock flakiness.
//
// The bucket is not safe for concurrent use; the Gate serializes access
// under its own lock.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewTokenBucket builds a bucket that starts full. rate and burst are
// clamped to be positive; now defaults to time.Now.
func NewTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst <= 0 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// refill accrues tokens for the time elapsed since the last observation.
// A clock that stands still or steps backwards accrues nothing — refill
// is monotone in observed time.
func (b *TokenBucket) refill() {
	t := b.now()
	el := t.Sub(b.last).Seconds()
	if el <= 0 {
		return
	}
	b.last = t
	b.tokens += el * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Take admits a request of the given cost if the bucket holds enough
// tokens, spending them; otherwise it admits nothing and spends nothing.
// A cost at or below zero is treated as one token.
func (b *TokenBucket) Take(cost float64) bool {
	if cost <= 0 {
		cost = 1
	}
	b.refill()
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

// Tokens reports the current level after refill — for tests and the
// pressure computation.
func (b *TokenBucket) Tokens() float64 {
	b.refill()
	return b.tokens
}
