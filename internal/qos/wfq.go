package qos

import "container/heap"

// wfq is a start-time fair queueing scheduler: each tenant has a FIFO of
// pending items; the scheduler pops from the tenant whose head item has
// the smallest virtual finish time, F = max(V, lastFinish[tenant]) +
// cost/weight. Over a backlog window each tenant's dequeued byte-share
// converges to its weight share regardless of arrival order — the
// property the fairness suite asserts.
//
// Not safe for concurrent use; the Gate serializes access.
type wfq struct {
	vtime   float64
	queues  map[string]*tenantQueue
	active  tenantHeap
	weights func(tenant string) float64
	length  int
}

type wfqItem struct {
	cost   float64
	run    func()
	finish float64
}

type tenantQueue struct {
	tenant     string
	items      []wfqItem
	lastFinish float64
	idx        int // heap index, -1 when inactive
}

// headFinish is the virtual finish time of the queue's head item.
func (q *tenantQueue) headFinish() float64 { return q.items[0].finish }

type tenantHeap []*tenantQueue

func (h tenantHeap) Len() int            { return len(h) }
func (h tenantHeap) Less(i, j int) bool  { return h[i].headFinish() < h[j].headFinish() }
func (h tenantHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *tenantHeap) Push(x interface{}) { q := x.(*tenantQueue); q.idx = len(*h); *h = append(*h, q) }
func (h *tenantHeap) Pop() interface{} {
	old := *h
	n := len(old)
	q := old[n-1]
	old[n-1] = nil
	q.idx = -1
	*h = old[:n-1]
	return q
}

func newWFQ(weights func(tenant string) float64) *wfq {
	return &wfq{queues: make(map[string]*tenantQueue), weights: weights}
}

// push enqueues one item for tenant, stamping its virtual finish time.
func (w *wfq) push(tenant string, cost float64, run func()) {
	if cost <= 0 {
		cost = 1
	}
	wt := w.weights(tenant)
	if wt <= 0 {
		wt = 1
	}
	q := w.queues[tenant]
	if q == nil {
		q = &tenantQueue{tenant: tenant, idx: -1}
		w.queues[tenant] = q
	}
	start := w.vtime
	if len(q.items) > 0 {
		// Items behind a backlog chain off the backlog's finish time.
		start = q.items[len(q.items)-1].finish
	} else if q.lastFinish > start {
		start = q.lastFinish
	}
	q.items = append(q.items, wfqItem{cost: cost, run: run, finish: start + cost/wt})
	w.length++
	if q.idx == -1 {
		heap.Push(&w.active, q)
	}
}

// pop dequeues the item with the smallest virtual finish time, advancing
// virtual time to it. Returns nil when the scheduler is empty.
func (w *wfq) pop() func() {
	if len(w.active) == 0 {
		return nil
	}
	q := w.active[0]
	it := q.items[0]
	q.items = q.items[1:]
	w.length--
	q.lastFinish = it.finish
	if it.finish > w.vtime {
		w.vtime = it.finish
	}
	if len(q.items) == 0 {
		// Idle tenants stay in the map so lastFinish survives the gap;
		// tenant cardinality is small (a handful of users per service).
		heap.Pop(&w.active)
	} else {
		heap.Fix(&w.active, 0)
	}
	return it.run
}

// len reports the number of queued items across all tenants.
func (w *wfq) len() int { return w.length }
