package qos

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

// TenantConfig is one tenant's share of the service: its WFQ weight and
// its token-bucket admission rate.
type TenantConfig struct {
	// Weight is the tenant's WFQ share; tenants drain in proportion to
	// their weights when backlogged. Zero means 1.
	Weight float64 `json:"weight,omitempty"`
	// RatePerSec is the tenant's token-bucket refill rate in requests per
	// second. Zero disables rate admission for the tenant (bucket always
	// admits).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity. Zero defaults to RatePerSec (one
	// second of burst), or 1 if that is also zero.
	Burst float64 `json:"burst,omitempty"`
}

// Config configures a provider-side Gate. The zero value (Enabled false)
// disables QoS entirely: no admission, no queueing, no pressure.
type Config struct {
	// Enabled turns the front door on.
	Enabled bool `json:"enabled,omitempty"`
	// Default applies to tenants without an explicit entry in Tenants.
	Default TenantConfig `json:"default,omitempty"`
	// Tenants holds per-tenant overrides keyed by tenant name.
	Tenants map[string]TenantConfig `json:"tenants,omitempty"`
	// MaxQueue bounds the WFQ backlog across all tenants; at the bound
	// every request sheds. Zero means 256.
	MaxQueue int `json:"max_queue,omitempty"`
	// ShedBatchAt is the queue-fill fraction (0..1] above which batch
	// traffic sheds. Zero means 0.5.
	ShedBatchAt float64 `json:"shed_batch_at,omitempty"`
	// ShedInteractiveAt is the queue-fill fraction above which interactive
	// traffic sheds too. Zero means 0.9. Keeping it above ShedBatchAt is
	// what makes the shedding order class-aware.
	ShedInteractiveAt float64 `json:"shed_interactive_at,omitempty"`
	// PressureAt is the queue-fill fraction where the pushed backpressure
	// signal starts rising from zero; it reaches 255 at MaxQueue. Zero
	// means 0.25.
	PressureAt float64 `json:"pressure_at,omitempty"`

	// Now injects the admission clock for tests. Nil means time.Now.
	Now func() time.Time `json:"-"`
}

func (c Config) maxQueue() int {
	if c.MaxQueue <= 0 {
		return 256
	}
	return c.MaxQueue
}

func (c Config) shedBatchAt() float64 {
	if c.ShedBatchAt <= 0 {
		return 0.5
	}
	return c.ShedBatchAt
}

func (c Config) shedInteractiveAt() float64 {
	if c.ShedInteractiveAt <= 0 {
		return 0.9
	}
	return c.ShedInteractiveAt
}

func (c Config) pressureAt() float64 {
	if c.PressureAt <= 0 {
		return 0.25
	}
	return c.PressureAt
}

func (c Config) tenant(name string) TenantConfig {
	tc, ok := c.Tenants[name]
	if !ok {
		tc = c.Default
	}
	if tc.Weight <= 0 {
		tc.Weight = 1
	}
	if tc.Burst <= 0 {
		tc.Burst = tc.RatePerSec
	}
	return tc
}

// tenantStats is one tenant+class cell of the gate's accounting.
type tenantStats struct {
	admitted atomic.Int64
	shed     atomic.Int64
	queuedNs atomic.Int64
}

// Gate is the provider-side front door: admission (token bucket + queue
// thresholds, class-aware), weighted fair queueing across tenants, and a
// pressure signal for the reply envelope. Submit and RunNext are the two
// halves of the dispatch contract: Submit admits and enqueues, the caller
// then schedules exactly one RunNext on its execution pool, and RunNext
// dequeues in WFQ order — so the pool's item count stays in lockstep with
// the queue while execution order is re-decided by fairness.
type Gate struct {
	cfg Config

	mu      sync.Mutex
	queue   *wfq
	buckets map[string]*TokenBucket

	statsMu sync.Mutex
	stats   map[string]*tenantStats // key: tenant + "\x00" + class
}

// NewGate builds a gate from cfg. A nil return means QoS is disabled and
// the caller should dispatch directly; every method on a nil *Gate is a
// safe no-op that admits everything.
func NewGate(cfg Config) *Gate {
	if !cfg.Enabled {
		return nil
	}
	g := &Gate{
		cfg:     cfg,
		buckets: make(map[string]*TokenBucket),
		stats:   make(map[string]*tenantStats),
	}
	g.queue = newWFQ(func(tenant string) float64 { return g.cfg.tenant(tenant).Weight })
	return g
}

func (g *Gate) cell(tenant string, class Class) *tenantStats {
	key := tenant + "\x00" + class.String()
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	ts := g.stats[key]
	if ts == nil {
		ts = &tenantStats{}
		g.stats[key] = ts
	}
	return ts
}

// normalize maps the wire identity to accounting identity: empty tenant
// becomes DefaultTenant, untagged class is treated as interactive.
func normalize(id Identity) Identity {
	if id.Tenant == "" {
		id.Tenant = DefaultTenant
	}
	if id.Class == ClassUnknown {
		id.Class = ClassInteractive
	}
	return id
}

// Submit runs admission control for one request and, if admitted,
// enqueues run into the WFQ. It returns a *ShedError when the request is
// rejected; the caller must then schedule one RunNext on its pool for
// each successful Submit. cost is the request size in bytes (used as the
// WFQ cost; admission charges one token per request regardless).
func (g *Gate) Submit(id Identity, cost int, run func()) error {
	if g == nil {
		if run != nil {
			run()
		}
		return nil
	}
	id = normalize(id)

	g.mu.Lock()
	depth := g.queue.len()
	max := g.cfg.maxQueue()
	fill := float64(depth) / float64(max)

	var reason string
	switch {
	case depth >= max:
		reason = "queue full"
	case id.Class == ClassBatch && fill >= g.cfg.shedBatchAt():
		reason = "batch shed threshold"
	case fill >= g.cfg.shedInteractiveAt():
		reason = "interactive shed threshold"
	default:
		tc := g.cfg.tenant(id.Tenant)
		if tc.RatePerSec > 0 && id.Class == ClassBatch {
			b := g.buckets[id.Tenant]
			if b == nil {
				b = NewTokenBucket(tc.RatePerSec, tc.Burst, g.cfg.Now)
				g.buckets[id.Tenant] = b
			}
			if !b.Take(1) {
				reason = "rate limit"
			}
		}
	}
	if reason != "" {
		g.mu.Unlock()
		g.cell(id.Tenant, id.Class).shed.Add(1)
		return &ShedError{Tenant: id.Tenant, Class: id.Class, Reason: reason}
	}

	ts := g.cell(id.Tenant, id.Class)
	enq := time.Now()
	if g.cfg.Now != nil {
		enq = g.cfg.Now()
	}
	g.queue.push(id.Tenant, float64(cost), func() {
		deq := time.Now()
		if g.cfg.Now != nil {
			deq = g.cfg.Now()
		}
		if d := deq.Sub(enq); d > 0 {
			ts.queuedNs.Add(int64(d))
		}
		if run != nil {
			run()
		}
	})
	g.mu.Unlock()
	ts.admitted.Add(1)
	return nil
}

// RunNext dequeues and executes the next request in WFQ order. An empty
// queue is a no-op (benign: only happens when the pool drains during
// shutdown races).
func (g *Gate) RunNext() {
	if g == nil {
		return
	}
	g.mu.Lock()
	run := g.queue.pop()
	g.mu.Unlock()
	if run != nil {
		run()
	}
}

// Depth reports the current queued backlog.
func (g *Gate) Depth() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queue.len()
}

// Pressure derives the server-push backpressure level from the queue
// depth: 0 below PressureAt·MaxQueue, rising linearly to 255 at MaxQueue.
func (g *Gate) Pressure() uint8 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	depth := g.queue.len()
	g.mu.Unlock()
	max := g.cfg.maxQueue()
	lo := int(g.cfg.pressureAt() * float64(max))
	if depth <= lo {
		return 0
	}
	span := max - lo
	if span <= 0 {
		return 255
	}
	p := 255 * (depth - lo) / span
	if p > 255 {
		p = 255
	}
	return uint8(p)
}

// CellSnapshot is one tenant+class row of the gate's accounting.
type CellSnapshot struct {
	Tenant   string
	Class    string
	Admitted int64
	Shed     int64
	QueuedNs int64
}

// Snapshot returns the per-tenant accounting — the raw material for both
// metrics collectors and test assertions.
func (g *Gate) Snapshot() []CellSnapshot {
	if g == nil {
		return nil
	}
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	out := make([]CellSnapshot, 0, len(g.stats))
	for key, ts := range g.stats {
		var tenant, class string
		for i := 0; i < len(key); i++ {
			if key[i] == 0 {
				tenant, class = key[:i], key[i+1:]
				break
			}
		}
		out = append(out, CellSnapshot{
			Tenant:   tenant,
			Class:    class,
			Admitted: ts.admitted.Load(),
			Shed:     ts.shed.Load(),
			QueuedNs: ts.queuedNs.Load(),
		})
	}
	return out
}

// RegisterMetrics exposes the gate's per-tenant admission accounting and
// live queue state in reg. Safe on a nil gate (registers nothing).
func (g *Gate) RegisterMetrics(reg *obs.Registry) {
	if g == nil || reg == nil {
		return
	}
	reg.MustRegister(obs.MetricQoSAdmitted,
		"Requests admitted by the QoS gate, by tenant and class.",
		obs.TypeCounter, func() []obs.Sample {
			var out []obs.Sample
			for _, c := range g.Snapshot() {
				out = append(out, obs.OneSample(float64(c.Admitted), "tenant", c.Tenant, "class", c.Class))
			}
			return out
		})
	reg.MustRegister(obs.MetricQoSShed,
		"Requests shed by the QoS gate, by tenant and class.",
		obs.TypeCounter, func() []obs.Sample {
			var out []obs.Sample
			for _, c := range g.Snapshot() {
				out = append(out, obs.OneSample(float64(c.Shed), "tenant", c.Tenant, "class", c.Class))
			}
			return out
		})
	reg.MustRegister(obs.MetricQoSQueuedNs,
		"Cumulative nanoseconds requests spent in the QoS queue, by tenant and class.",
		obs.TypeCounter, func() []obs.Sample {
			var out []obs.Sample
			for _, c := range g.Snapshot() {
				out = append(out, obs.OneSample(float64(c.QueuedNs), "tenant", c.Tenant, "class", c.Class))
			}
			return out
		})
	reg.MustRegister(obs.MetricQoSQueueDepth,
		"Current QoS queue backlog across tenants.",
		obs.TypeGauge, func() []obs.Sample {
			return obs.GaugeSample(float64(g.Depth()))
		})
	reg.MustRegister(obs.MetricQoSPressure,
		"Current server-push backpressure level (0-255).",
		obs.TypeGauge, func() []obs.Sample {
			return obs.GaugeSample(float64(g.Pressure()))
		})
}
