package qos

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// fakeClock is the injectable time source of the property suite: tests
// advance it explicitly, so no assertion ever depends on a sleep.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// --- TokenBucket properties ---------------------------------------------

// The core safety property: over any observation window the bucket admits
// at most burst + rate·elapsed tokens, for any interleaving of takes and
// clock advances. Table of (rate, burst, steps) driven by a seeded PRNG.
func TestTokenBucketNeverOverAdmits(t *testing.T) {
	cases := []struct {
		rate, burst float64
		steps       int
	}{
		{rate: 10, burst: 10, steps: 500},
		{rate: 100, burst: 5, steps: 500},
		{rate: 1, burst: 50, steps: 300},
		{rate: 7.5, burst: 2.5, steps: 400},
	}
	for i, tc := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			clk := newFakeClock()
			b := NewTokenBucket(tc.rate, tc.burst, clk.now)
			rng := rand.New(rand.NewSource(int64(42 + i)))
			var admitted, elapsed float64
			for s := 0; s < tc.steps; s++ {
				switch rng.Intn(3) {
				case 0:
					d := time.Duration(rng.Intn(200)) * time.Millisecond
					clk.advance(d)
					elapsed += d.Seconds()
				case 1:
					cost := 1 + rng.Float64()*3
					if b.Take(cost) {
						admitted += cost
					}
				case 2:
					if b.Take(1) {
						admitted++
					}
				}
				bound := tc.burst + tc.rate*elapsed
				if admitted > bound+1e-6 {
					t.Fatalf("step %d: admitted %.3f > burst+rate*elapsed = %.3f", s, admitted, bound)
				}
			}
		})
	}
}

// Refill is monotone in observed time: a stalled or backwards-stepping
// clock accrues nothing, and the level never exceeds burst.
func TestTokenBucketRefillMonotone(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(10, 5, clk.now)
	if got := b.Tokens(); got != 5 {
		t.Fatalf("bucket should start full: got %v want 5", got)
	}
	if !b.Take(5) {
		t.Fatal("full bucket refused its burst")
	}
	// Stalled clock: no refill.
	if b.Take(1) {
		t.Fatal("empty bucket admitted with a stalled clock")
	}
	// Backwards clock: still no refill.
	clk.advance(-time.Hour)
	if got := b.Tokens(); got != 0 {
		t.Fatalf("backwards clock accrued tokens: %v", got)
	}
	// Forward by 100ms at 10/s -> exactly 1 token.
	clk.advance(time.Hour) // return to the stall point (net zero from there)
	clk.advance(100 * time.Millisecond)
	if !b.Take(1) {
		t.Fatal("100ms at 10/s should admit one token")
	}
	if b.Take(1) {
		t.Fatal("admitted a second token from a 1-token refill")
	}
	// A long idle period caps at burst, not rate·elapsed.
	clk.advance(time.Hour)
	if got := b.Tokens(); got != 5 {
		t.Fatalf("idle refill should cap at burst 5: got %v", got)
	}
}

// Take is all-or-nothing: a refused take spends nothing.
func TestTokenBucketTakeAllOrNothing(t *testing.T) {
	clk := newFakeClock()
	b := NewTokenBucket(1, 3, clk.now)
	if b.Take(5) {
		t.Fatal("admitted a cost above the full burst")
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("refused take spent tokens: %v want 3", got)
	}
	if !b.Take(3) {
		t.Fatal("exact-burst take refused")
	}
}

// --- WFQ properties ------------------------------------------------------

// With every tenant continuously backlogged, the dequeued byte share
// converges to the weight share within a bounded window, regardless of
// arrival order.
func TestWFQShareConvergesToWeights(t *testing.T) {
	weights := map[string]float64{"a": 1, "b": 2, "c": 4}
	w := newWFQ(func(tenant string) float64 { return weights[tenant] })
	rng := rand.New(rand.NewSource(99))

	// Enqueue a large interleaved backlog with varying costs; each item's
	// callback attributes its cost when popped, so draining half of it
	// (every tenant stays backlogged throughout) measures the served
	// byte share directly.
	served := map[string]float64{}
	var total float64
	tenants := []string{"a", "b", "c"}
	for i := 0; i < 3000; i++ {
		tn := tenants[rng.Intn(len(tenants))]
		cost := 64 + float64(rng.Intn(1024))
		w.push(tn, cost, func() { served[tn] += cost; total += cost })
	}
	for i := 0; i < 1500; i++ {
		run := w.pop()
		if run == nil {
			t.Fatalf("pop %d: scheduler empty with backlog remaining", i)
		}
		run()
	}

	var wsum float64
	for _, wt := range weights {
		wsum += wt
	}
	for tn, wt := range weights {
		want := wt / wsum
		got := served[tn] / total
		if diff := got - want; diff < -0.05 || diff > 0.05 {
			t.Errorf("tenant %s byte share %.3f, want %.3f ± 0.05", tn, got, want)
		}
	}
}

// Items of one tenant drain in FIFO order, and an idle gap does not grant
// a tenant credit for the time it was absent (lastFinish survives).
func TestWFQFIFOAndNoIdleCredit(t *testing.T) {
	w := newWFQ(func(string) float64 { return 1 })
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		w.push("a", 10, func() { order = append(order, i) })
	}
	for i := 0; i < 5; i++ {
		w.pop()()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: served %v", order)
		}
	}

	// After the drain virtual time has caught up with "a"'s last finish:
	// its idle gap earned it no credit, so a returning burst competes from
	// the current virtual time like everyone else — a fresh tenant with a
	// cheaper head item is served first.
	w.push("a", 10, func() { order = append(order, 100) })
	w.push("fresh", 2, func() { order = append(order, 200) })
	w.pop()()
	if order[len(order)-1] != 200 {
		t.Fatal("cheaper fresh-tenant item should be scheduled before the returning tenant's burst")
	}
}

func TestWFQEmptyPop(t *testing.T) {
	w := newWFQ(func(string) float64 { return 1 })
	if run := w.pop(); run != nil {
		t.Fatal("pop on empty scheduler returned a run")
	}
	w.push("a", 1, func() {})
	w.pop()()
	if run := w.pop(); run != nil {
		t.Fatal("pop after drain returned a run")
	}
	if w.len() != 0 {
		t.Fatalf("len after drain = %d", w.len())
	}
}

// --- Gate admission ------------------------------------------------------

func gateConfig(clk *fakeClock) Config {
	return Config{
		Enabled:  true,
		MaxQueue: 10,
		Tenants: map[string]TenantConfig{
			"limited": {RatePerSec: 2, Burst: 2},
		},
		Now: clk.now,
	}
}

// The shedding ladder: batch sheds at 50% fill, interactive at 90%, and a
// full queue sheds everything — in that order, always with typed errors.
func TestGateSheddingOrder(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(gateConfig(clk))

	fill := func(n int) {
		for i := 0; i < n; i++ {
			if err := g.Submit(Identity{Tenant: "t", Class: ClassInteractive}, 1, func() {}); err != nil {
				t.Fatalf("fill submit %d: %v", i, err)
			}
		}
	}

	fill(5) // fill = 0.5: batch threshold trips, interactive still admitted
	err := g.Submit(Identity{Tenant: "t", Class: ClassBatch}, 1, func() {})
	if !IsShed(err) {
		t.Fatalf("batch at 50%% fill: got %v, want shed", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Class != ClassBatch || shed.Tenant != "t" {
		t.Fatalf("shed error carries wrong identity: %+v", shed)
	}
	if err := g.Submit(Identity{Tenant: "t", Class: ClassInteractive}, 1, func() {}); err != nil {
		t.Fatalf("interactive at 50%% fill should be admitted: %v", err)
	}

	fill(3) // depth 9, fill = 0.9: interactive threshold trips too
	if err := g.Submit(Identity{Tenant: "t", Class: ClassInteractive}, 1, func() {}); !IsShed(err) {
		t.Fatalf("interactive at 90%% fill: got %v, want shed", err)
	}

	// Drain and verify both classes are admitted again: shedding is a
	// function of live depth, not history.
	for g.Depth() > 0 {
		g.RunNext()
	}
	if err := g.Submit(Identity{Tenant: "t", Class: ClassBatch}, 1, func() {}); err != nil {
		t.Fatalf("batch after drain: %v", err)
	}
}

// The token bucket rate-limits batch traffic only; interactive traffic
// from the same tenant is never rate-shed.
func TestGateRateLimitsBatchOnly(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(gateConfig(clk))
	id := Identity{Tenant: "limited", Class: ClassBatch}

	admitted, shedCount := 0, 0
	for i := 0; i < 5; i++ {
		if err := g.Submit(id, 1, func() {}); err == nil {
			admitted++
		} else if IsShed(err) {
			shedCount++
		} else {
			t.Fatalf("unexpected error type: %v", err)
		}
	}
	if admitted != 2 || shedCount != 3 {
		t.Fatalf("burst-2 bucket admitted %d shed %d, want 2/3", admitted, shedCount)
	}
	// Interactive from the same (dry) tenant still admits.
	if err := g.Submit(Identity{Tenant: "limited", Class: ClassInteractive}, 1, func() {}); err != nil {
		t.Fatalf("interactive should bypass the rate bucket: %v", err)
	}
	// Refill restores batch admission.
	clk.advance(time.Second)
	if err := g.Submit(id, 1, func() {}); err != nil {
		t.Fatalf("batch after refill: %v", err)
	}
}

// The gate accounts every outcome in per-tenant+class cells.
func TestGateSnapshotCells(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(gateConfig(clk))
	_ = g.Submit(Identity{Tenant: "limited", Class: ClassBatch}, 1, func() {})
	_ = g.Submit(Identity{}, 1, func() {}) // normalizes to default/interactive
	cells := map[string]CellSnapshot{}
	for _, c := range g.Snapshot() {
		cells[c.Tenant+"/"+c.Class] = c
	}
	if c := cells["limited/batch"]; c.Admitted != 1 {
		t.Fatalf("limited/batch cell: %+v", c)
	}
	if c := cells[DefaultTenant+"/interactive"]; c.Admitted != 1 {
		t.Fatalf("default/interactive cell: %+v", c)
	}
}

// Pressure is 0 below the PressureAt fill, then rises to 255 at MaxQueue.
func TestGatePressureCurve(t *testing.T) {
	clk := newFakeClock()
	cfg := gateConfig(clk)
	cfg.MaxQueue = 100
	g := NewGate(cfg)
	if p := g.Pressure(); p != 0 {
		t.Fatalf("empty gate pressure = %d", p)
	}
	for i := 0; i < 25; i++ {
		_ = g.Submit(Identity{Class: ClassInteractive}, 1, func() {})
	}
	if p := g.Pressure(); p != 0 {
		t.Fatalf("pressure at the knee should still be 0, got %d", p)
	}
	for i := 0; i < 50; i++ {
		_ = g.Submit(Identity{Class: ClassInteractive}, 1, func() {})
	}
	mid := g.Pressure()
	if mid == 0 || mid >= 255 {
		t.Fatalf("pressure at 75%% fill should be strictly between 0 and 255, got %d", mid)
	}
	// WFQ drains restore pressure to zero.
	for g.Depth() > 0 {
		g.RunNext()
	}
	if p := g.Pressure(); p != 0 {
		t.Fatalf("drained gate pressure = %d", p)
	}
}

// A nil gate (QoS disabled) admits everything inline.
func TestNilGateAdmitsInline(t *testing.T) {
	var g *Gate
	ran := false
	if err := g.Submit(Identity{Class: ClassBatch}, 1, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("nil gate did not run inline")
	}
	g.RunNext()
	if g.Depth() != 0 || g.Pressure() != 0 || g.Snapshot() != nil {
		t.Fatal("nil gate should report empty state")
	}
}

// --- Identity plumbing and wire codec ------------------------------------

func TestWithClassPreservesTenant(t *testing.T) {
	ctx := ContextWithIdentity(t.Context(), Identity{Tenant: "nova"})
	ctx = WithClass(ctx, ClassBatch)
	id := IdentityFromContext(ctx)
	if id.Tenant != "nova" || id.Class != ClassBatch {
		t.Fatalf("got %+v", id)
	}
	// Same class is a no-op (no new context allocation needed, and the
	// identity is unchanged).
	ctx2 := WithClass(ctx, ClassBatch)
	if ctx2 != ctx {
		t.Fatal("WithClass with the same class should return ctx unchanged")
	}
}

func TestShedWireRoundTrip(t *testing.T) {
	for _, e := range []*ShedError{
		{Tenant: "nova", Class: ClassBatch, Reason: "rate limit"},
		{Tenant: "", Class: ClassInteractive, Reason: "queue full"},
		{Tenant: "a-very-long-tenant-name-with-dashes", Class: ClassUnknown, Reason: ""},
	} {
		got := ParseShedWire(e.AppendWire(nil))
		if got.Tenant != e.Tenant || got.Class != e.Class || got.Reason != e.Reason {
			t.Fatalf("round trip: got %+v want %+v", got, e)
		}
	}
}

// Malformed payloads degrade to a ShedError carrying the raw bytes — a
// shed must never turn into an untyped failure on the way back.
func TestShedWireMalformed(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 2}, {1, 255, 255, 'x'}} {
		e := ParseShedWire(b)
		if e == nil {
			t.Fatalf("ParseShedWire(%v) = nil", b)
		}
		if !IsShed(e) {
			t.Fatalf("degraded parse is not a shed: %v", e)
		}
	}
}
