// Package health maintains the client-side view of server liveness that the
// replication layer routes around (ISSUE 5; the paper's deployments in §IV
// run hundreds of daemons, where individual node deaths are routine).
//
// Each target (a server address) moves through a small state machine:
//
//	Alive ──failure──▶ Suspect ──more failures──▶ Dead
//	  ▲                   │                        │
//	  └────success────────┘                     success
//	  ▲                                            ▼
//	  └──────MarkResynced────────────────────── Rejoined
//
// Evidence comes from two independent feeds: the heartbeat Prober (a small
// control-plane ping on an interval) and the resilience layer's circuit
// breakers (a breaker opening for a target is a strong liveness signal from
// the data plane, reported via Tracker.ReportBreakerOpen). Either feed can
// move a target towards Dead; only successful contact moves it back.
//
// A Dead target that answers again becomes Rejoined — reachable, but its
// store may be missing writes that happened while it was down, so reads
// may use it while the anti-entropy pass (core.ResyncServer) has not yet
// declared it whole. MarkResynced promotes Rejoined back to Alive.
//
// Unknown targets are Alive: health is advisory, and a datastore must work
// before the first probe tick completes.
package health

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

// State is one liveness state of the per-target machine.
type State int

// States, ordered by increasing distrust (except Rejoined, which is a
// recovering variant of Alive).
const (
	Alive State = iota
	Suspect
	Dead
	Rejoined
)

// String renders the state for logs and metrics labels.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Rejoined:
		return "rejoined"
	default:
		return "unknown"
	}
}

// Config tunes the state machine thresholds.
type Config struct {
	// SuspectAfter consecutive failures move Alive → Suspect. Default 1.
	SuspectAfter int
	// DeadAfter consecutive failures move Suspect → Dead. Default 3.
	DeadAfter int
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	return c
}

// TargetStatus is one target's externally visible health.
type TargetStatus struct {
	Target   string `json:"target"`
	State    string `json:"state"`
	Failures int    `json:"failures"`
}

type entry struct {
	state    State
	failures int // consecutive failures since the last success
}

// Tracker is the per-target state machine. All methods are safe for
// concurrent use; a nil *Tracker is valid and reports every target Alive,
// so replication code can consult it unconditionally.
type Tracker struct {
	cfg Config

	mu      sync.Mutex
	targets map[string]*entry

	transitions atomic.Int64
	probes      atomic.Int64
	probeFails  atomic.Int64

	// OnTransition, if set before the tracker is shared, observes every
	// state change (target, from, to). Called without the tracker lock.
	OnTransition func(target string, from, to State)
}

// NewTracker creates a tracker with the given thresholds.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), targets: make(map[string]*entry)}
}

// Watch registers targets so they appear in Snapshot before any evidence
// arrives. Registration is optional — evidence for an unknown target
// creates it on the fly.
func (t *Tracker) Watch(targets ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, target := range targets {
		if _, ok := t.targets[target]; !ok {
			t.targets[target] = &entry{state: Alive}
		}
	}
}

// Forget removes a target from the tracker — it was drained out of the
// membership, so its terminal state must stop contributing to
// UnusableCount and snapshots. Unknown targets are a no-op.
func (t *Tracker) Forget(targets ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, target := range targets {
		delete(t.targets, target)
	}
}

// StateOf returns the target's current state. Unknown targets are Alive.
func (t *Tracker) StateOf(target string) State {
	if t == nil {
		return Alive
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.targets[target]; ok {
		return e.state
	}
	return Alive
}

// Usable reports whether the target should be offered reads and writes:
// Alive or Rejoined. Suspect and Dead targets are routed around.
func (t *Tracker) Usable(target string) bool {
	s := t.StateOf(target)
	return s == Alive || s == Rejoined
}

// ReportSuccess records successful contact with the target. A Suspect
// target returns to Alive; a Dead target becomes Rejoined (reachable but
// possibly missing writes until MarkResynced).
func (t *Tracker) ReportSuccess(target string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e := t.ensureLocked(target)
	e.failures = 0
	from := e.state
	var to State
	switch from {
	case Suspect:
		to = Alive
	case Dead:
		to = Rejoined
	default:
		t.mu.Unlock()
		return
	}
	e.state = to
	t.mu.Unlock()
	t.noteTransition(target, from, to)
}

// ReportFailure records failed contact with the target and returns its
// state after the evidence is applied.
func (t *Tracker) ReportFailure(target string) State {
	if t == nil {
		return Alive
	}
	t.mu.Lock()
	e := t.ensureLocked(target)
	e.failures++
	from := e.state
	to := from
	switch from {
	case Alive, Rejoined:
		if e.failures >= t.cfg.SuspectAfter {
			to = Suspect
		}
	case Suspect:
		if e.failures >= t.cfg.SuspectAfter+t.cfg.DeadAfter {
			to = Dead
		}
	}
	e.state = to
	t.mu.Unlock()
	if to != from {
		t.noteTransition(target, from, to)
	}
	return to
}

// ReportBreakerOpen is the resilience feed: the per-target circuit breaker
// opened, meaning the data plane has already seen enough consecutive
// failures to give up on the target. The target is demoted to at least
// Suspect immediately, regardless of probe cadence.
func (t *Tracker) ReportBreakerOpen(target string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e := t.ensureLocked(target)
	from := e.state
	if from != Alive && from != Rejoined {
		t.mu.Unlock()
		return
	}
	if e.failures < t.cfg.SuspectAfter {
		e.failures = t.cfg.SuspectAfter
	}
	e.state = Suspect
	t.mu.Unlock()
	t.noteTransition(target, from, Suspect)
}

// MarkResynced records that anti-entropy finished replaying missed keys to
// a Rejoined target, promoting it back to Alive.
func (t *Tracker) MarkResynced(target string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e := t.ensureLocked(target)
	if e.state != Rejoined {
		t.mu.Unlock()
		return
	}
	e.state = Alive
	e.failures = 0
	t.mu.Unlock()
	t.noteTransition(target, Rejoined, Alive)
}

func (t *Tracker) ensureLocked(target string) *entry {
	e := t.targets[target]
	if e == nil {
		e = &entry{state: Alive}
		t.targets[target] = e
	}
	return e
}

func (t *Tracker) noteTransition(target string, from, to State) {
	t.transitions.Add(1)
	if cb := t.OnTransition; cb != nil {
		cb(target, from, to)
	}
}

// UnusableCount returns how many known targets are currently Suspect or
// Dead. The replication layer uses it as a loss guard: a replica write may
// be dropped only while fewer servers are unusable than the replication
// factor, because past that point some keys may have no surviving copy.
func (t *Tracker) UnusableCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.targets {
		if e.state == Suspect || e.state == Dead {
			n++
		}
	}
	return n
}

// Snapshot returns every known target's status, sorted by target name for
// deterministic rendering (admin RPC, tests).
func (t *Tracker) Snapshot() []TargetStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TargetStatus, 0, len(t.targets))
	for target, e := range t.targets {
		out = append(out, TargetStatus{Target: target, State: e.state.String(), Failures: e.failures})
	}
	t.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Target < out[b].Target })
	return out
}

// Transitions returns the number of state changes observed so far.
func (t *Tracker) Transitions() int64 {
	if t == nil {
		return 0
	}
	return t.transitions.Load()
}

// RegisterMetrics publishes the tracker through the obs registry: a gauge
// with one labelled sample per target (numeric state) plus transition and
// probe counters.
func (t *Tracker) RegisterMetrics(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.MustRegister(obs.MetricHealthState,
		"Per-target liveness state: 0 alive, 1 suspect, 2 dead, 3 rejoined.",
		obs.TypeGauge, func() []obs.Sample {
			t.mu.Lock()
			out := make([]obs.Sample, 0, len(t.targets))
			for target, e := range t.targets {
				out = append(out, obs.OneSample(float64(e.state), "target", target))
			}
			t.mu.Unlock()
			return out
		})
	reg.MustRegister(obs.MetricHealthTransitions,
		"Health state transitions observed by this process.",
		obs.TypeCounter, func() []obs.Sample {
			return obs.GaugeSample(float64(t.transitions.Load()))
		})
	reg.MustRegister(obs.MetricHealthProbes,
		"Heartbeat probes sent, labelled by outcome.",
		obs.TypeCounter, func() []obs.Sample {
			ok := t.probes.Load() - t.probeFails.Load()
			return []obs.Sample{
				obs.OneSample(float64(ok), "outcome", "ok"),
				obs.OneSample(float64(t.probeFails.Load()), "outcome", "error"),
			}
		})
}
