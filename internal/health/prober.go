package health

import (
	"context"
	"sync"
	"time"
)

// ProbeFunc performs one heartbeat probe of a target and returns nil if the
// target answered. The production implementation is margo's control-plane
// ping (margo.Instance.Ping); tests inject their own.
type ProbeFunc func(ctx context.Context, target string) error

// Prober drives periodic heartbeat probes of a fixed target set and feeds
// the outcomes into a Tracker. The loop itself is scheduled by the caller
// (core runs it on the AsyncEngine's tracked goroutines, the argo analog);
// Tick is exposed separately so tests can advance the prober
// deterministically without real time.
type Prober struct {
	tracker  *Tracker
	probe    ProbeFunc
	interval time.Duration
	timeout  time.Duration

	// mu guards targets: the set is fixed at construction for static
	// deployments, but live rebalancing (internal/autopilot) swaps it when
	// the membership changes shape.
	mu      sync.Mutex
	targets []string
}

// ProberConfig configures a Prober.
type ProberConfig struct {
	// Interval between probe rounds. Default 500ms.
	Interval time.Duration
	// Timeout bounds each individual probe. Default half the interval.
	Timeout time.Duration
}

// NewProber creates a prober over the given targets. The targets are also
// registered with the tracker so they appear in snapshots immediately.
func NewProber(t *Tracker, probe ProbeFunc, targets []string, cfg ProberConfig) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval / 2
	}
	t.Watch(targets...)
	return &Prober{
		tracker:  t,
		probe:    probe,
		targets:  append([]string(nil), targets...),
		interval: cfg.Interval,
		timeout:  cfg.Timeout,
	}
}

// SetTargets replaces the probed target set — the membership changed shape
// (servers added by a scale-out, removed by a drain). New targets are
// registered with the tracker; targets no longer listed are simply not
// probed again, so a drained server's last recorded state goes stale
// harmlessly instead of decaying to Dead and skewing UnusableCount.
func (p *Prober) SetTargets(targets []string) {
	p.tracker.Watch(targets...)
	p.mu.Lock()
	p.targets = append([]string(nil), targets...)
	p.mu.Unlock()
}

// Targets returns the currently probed target set.
func (p *Prober) Targets() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.targets...)
}

// Tick runs one probe round synchronously: every target is probed once and
// the result reported to the tracker. Probes run serially — the round is a
// control-plane trickle, not a data-plane fan-out — which also keeps test
// runs deterministic.
func (p *Prober) Tick(ctx context.Context) {
	for _, target := range p.Targets() {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		pctx, cancel := context.WithTimeout(orBackground(ctx), p.timeout)
		err := p.probe(pctx, target)
		cancel()
		p.tracker.probes.Add(1)
		if err != nil {
			p.tracker.probeFails.Add(1)
			p.tracker.ReportFailure(target)
		} else {
			p.tracker.ReportSuccess(target)
		}
	}
}

// Run ticks until ctx is cancelled. Meant to be launched on a tracked
// goroutine (asyncengine.Engine.Go) so shutdown waits for the loop.
func (p *Prober) Run(ctx context.Context) {
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			p.Tick(ctx)
		}
	}
}

func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
