package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

func TestStateMachineLifecycle(t *testing.T) {
	tr := NewTracker(Config{SuspectAfter: 1, DeadAfter: 3})
	const s = "srv1"

	if got := tr.StateOf(s); got != Alive {
		t.Fatalf("unknown target state = %v, want Alive", got)
	}
	if !tr.Usable(s) {
		t.Fatal("unknown target should be usable")
	}

	// One failure: Alive -> Suspect.
	if got := tr.ReportFailure(s); got != Suspect {
		t.Fatalf("after 1 failure: %v, want Suspect", got)
	}
	if tr.Usable(s) {
		t.Fatal("suspect target should not be usable")
	}

	// Success from Suspect returns to Alive.
	tr.ReportSuccess(s)
	if got := tr.StateOf(s); got != Alive {
		t.Fatalf("after recovery: %v, want Alive", got)
	}

	// SuspectAfter + DeadAfter consecutive failures: -> Dead.
	for i := 0; i < 4; i++ {
		tr.ReportFailure(s)
	}
	if got := tr.StateOf(s); got != Dead {
		t.Fatalf("after 4 failures: %v, want Dead", got)
	}

	// Contact again: Dead -> Rejoined (usable, pending resync).
	tr.ReportSuccess(s)
	if got := tr.StateOf(s); got != Rejoined {
		t.Fatalf("after rejoin: %v, want Rejoined", got)
	}
	if !tr.Usable(s) {
		t.Fatal("rejoined target should be usable")
	}

	// Anti-entropy completes: Rejoined -> Alive.
	tr.MarkResynced(s)
	if got := tr.StateOf(s); got != Alive {
		t.Fatalf("after resync: %v, want Alive", got)
	}
}

func TestMarkResyncedOnlyFromRejoined(t *testing.T) {
	tr := NewTracker(Config{})
	tr.ReportFailure("x")
	tr.MarkResynced("x") // no-op: x is Suspect, not Rejoined
	if got := tr.StateOf("x"); got != Suspect {
		t.Fatalf("MarkResynced changed a Suspect target: %v", got)
	}
}

func TestBreakerOpenFeed(t *testing.T) {
	tr := NewTracker(Config{SuspectAfter: 2, DeadAfter: 3})
	tr.ReportBreakerOpen("srv")
	if got := tr.StateOf("srv"); got != Suspect {
		t.Fatalf("breaker open: %v, want Suspect", got)
	}
	// The breaker feed skips the SuspectAfter threshold entirely; further
	// probe failures then walk Suspect toward Dead.
	for i := 0; i < 3; i++ {
		tr.ReportFailure("srv")
	}
	if got := tr.StateOf("srv"); got != Dead {
		t.Fatalf("after breaker + 3 failures: %v, want Dead", got)
	}
	// Breaker open on a Dead target is a no-op (does not resurrect or
	// double-count).
	n := tr.Transitions()
	tr.ReportBreakerOpen("srv")
	if tr.Transitions() != n {
		t.Fatal("breaker open on Dead target recorded a transition")
	}
}

func TestTransitionCallbackAndCount(t *testing.T) {
	tr := NewTracker(Config{SuspectAfter: 1, DeadAfter: 1})
	var mu sync.Mutex
	var seen []string
	tr.OnTransition = func(target string, from, to State) {
		mu.Lock()
		seen = append(seen, fmt.Sprintf("%s:%v->%v", target, from, to))
		mu.Unlock()
	}
	tr.ReportFailure("a") // alive->suspect
	tr.ReportFailure("a") // suspect->dead
	tr.ReportSuccess("a") // dead->rejoined
	tr.MarkResynced("a")  // rejoined->alive
	want := []string{"a:alive->suspect", "a:suspect->dead", "a:dead->rejoined", "a:rejoined->alive"}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, seen[i], want[i])
		}
	}
	if tr.Transitions() != 4 {
		t.Fatalf("Transitions = %d, want 4", tr.Transitions())
	}
}

func TestNilTrackerIsAlive(t *testing.T) {
	var tr *Tracker
	if !tr.Usable("anything") {
		t.Fatal("nil tracker should report usable")
	}
	tr.ReportSuccess("x")
	tr.ReportFailure("x")
	tr.ReportBreakerOpen("x")
	tr.MarkResynced("x")
	tr.Watch("x")
	if tr.Snapshot() != nil || tr.Transitions() != 0 {
		t.Fatal("nil tracker methods should be no-ops")
	}
}

func TestSnapshotSortedAndWatched(t *testing.T) {
	tr := NewTracker(Config{})
	tr.Watch("srv-b", "srv-a", "srv-c")
	tr.ReportFailure("srv-c")
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d targets, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Target >= snap[i].Target {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
	for _, s := range snap {
		want := "alive"
		if s.Target == "srv-c" {
			want = "suspect"
		}
		if s.State != want {
			t.Fatalf("%s state = %s, want %s", s.Target, s.State, want)
		}
	}
}

func TestProberTickFeedsTracker(t *testing.T) {
	tr := NewTracker(Config{SuspectAfter: 1, DeadAfter: 2})
	down := map[string]bool{"s1": true}
	var mu sync.Mutex
	probe := func(ctx context.Context, target string) error {
		mu.Lock()
		defer mu.Unlock()
		if down[target] {
			return errors.New("unreachable")
		}
		return nil
	}
	p := NewProber(tr, probe, []string{"s0", "s1"}, ProberConfig{})

	ctx := context.Background()
	p.Tick(ctx)
	if got := tr.StateOf("s0"); got != Alive {
		t.Fatalf("s0 = %v, want Alive", got)
	}
	if got := tr.StateOf("s1"); got != Suspect {
		t.Fatalf("s1 = %v, want Suspect", got)
	}
	p.Tick(ctx)
	p.Tick(ctx)
	if got := tr.StateOf("s1"); got != Dead {
		t.Fatalf("s1 after 3 failed rounds = %v, want Dead", got)
	}

	// Server comes back: next round rejoins it.
	mu.Lock()
	down["s1"] = false
	mu.Unlock()
	p.Tick(ctx)
	if got := tr.StateOf("s1"); got != Rejoined {
		t.Fatalf("s1 after recovery = %v, want Rejoined", got)
	}
}

func TestProberHonorsContext(t *testing.T) {
	tr := NewTracker(Config{})
	calls := 0
	probe := func(ctx context.Context, target string) error { calls++; return nil }
	p := NewProber(tr, probe, []string{"a", "b", "c"}, ProberConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Tick(ctx)
	if calls != 0 {
		t.Fatalf("cancelled tick probed %d targets, want 0", calls)
	}
}

func TestRegisterMetrics(t *testing.T) {
	tr := NewTracker(Config{})
	tr.Watch("s0", "s1")
	tr.ReportFailure("s1")
	reg := obs.NewRegistry()
	tr.RegisterMetrics(reg)
	p := NewProber(tr, func(ctx context.Context, target string) error {
		if target == "s1" {
			return errors.New("down")
		}
		return nil
	}, []string{"s0", "s1"}, ProberConfig{})
	p.Tick(context.Background())

	fams := reg.Snapshot()
	byName := map[string]obs.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	st, ok := byName[obs.MetricHealthState]
	if !ok || len(st.Samples) != 2 {
		t.Fatalf("health state family missing or wrong: %+v", st)
	}
	if tf := byName[obs.MetricHealthTransitions]; len(tf.Samples) != 1 || tf.Samples[0].Value < 1 {
		t.Fatalf("transitions family: %+v", tf)
	}
	pf, ok := byName[obs.MetricHealthProbes]
	if !ok {
		t.Fatal("probes family missing")
	}
	var okCount, errCount float64
	for _, s := range pf.Samples {
		switch s.Labels["outcome"] {
		case "ok":
			okCount = s.Value
		case "error":
			errCount = s.Value
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Fatalf("probe outcomes ok=%v err=%v, want 1/1", okCount, errCount)
	}
}
