// Package filebased implements the traditional file-based HEP workflow the
// paper compares against (§IV-A): the list of input files is written to a
// text file; work is decomposed into blocks of files (or pipelined from a
// shared queue); independent processes run the candidate selection
// sequentially over their files and write the accepted slice IDs and their
// elapsed time to per-process text files.
//
// In the paper this is a Python-multiprocessing harness spawning CAFAna
// routines on grid-style processes; here processes are goroutines running
// the same nova.SelectEvent the HEPnOS workflow uses, so the two workflows'
// outputs are directly comparable.
package filebased

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/nova"
	"github.com/hep-on-hpc/hepnos-go/internal/stats"
)

// Mode selects the work-decomposition strategy.
type Mode string

// Decomposition modes.
const (
	// ModePipelined hands files out from a shared queue as processes
	// finish — "when a process is finished processing one file it
	// requests the next file" (§I).
	ModePipelined Mode = "pipelined"
	// ModeStatic splits the file list into equal contiguous blocks up
	// front, like the start/end line-number ranges in the paper's Python
	// harness. It exposes the load imbalance pipelining hides.
	ModeStatic Mode = "static"
)

// Config describes one workflow execution.
type Config struct {
	// Files is the input file list, in text-file order.
	Files []string
	// Processes is the number of concurrent worker processes (the grid
	// allocation: nodes × processes-per-node).
	Processes int
	// Mode defaults to ModePipelined.
	Mode Mode
	// OutDir, when set, receives per-process selected-ID and timing text
	// files, mirroring the paper's harness output.
	OutDir string
	// SliceWork emulates per-slice analysis compute (see
	// workflow.Config.SliceWork); zero adds nothing.
	SliceWork time.Duration
}

// ProcStats is one process's accounting.
type ProcStats struct {
	Process int
	Files   int
	Events  int
	Slices  int
	// Selected is how many slices the process accepted.
	Selected int
	// Start and End are seconds since the workflow began.
	Start, End float64
}

// Result is the workflow outcome.
type Result struct {
	// Selected is the union of accepted slice IDs, sorted.
	Selected []nova.SliceRef
	// PerProcess has one entry per worker process.
	PerProcess []ProcStats
	// TotalEvents and TotalSlices count everything examined.
	TotalEvents int
	TotalSlices int
	// Makespan is first-start to last-end in seconds; Throughput is
	// slices per second over it — the paper's metric.
	Makespan   float64
	Throughput float64
	// Utilization is the mean busy fraction of the processes.
	Utilization float64
}

// Run executes the workflow.
func Run(cfg Config) (Result, error) {
	if len(cfg.Files) == 0 {
		return Result{}, fmt.Errorf("filebased: no input files")
	}
	procs := cfg.Processes
	if procs <= 0 {
		procs = 1
	}
	if cfg.Mode == "" {
		cfg.Mode = ModePipelined
	}

	assignments, err := buildAssignments(cfg.Mode, len(cfg.Files), procs)
	if err != nil {
		return Result{}, err
	}

	var (
		mu       sync.Mutex
		selected []nova.SliceRef
		per      = make([]ProcStats, procs)
		firstErr error
	)
	epoch := time.Now()

	// In pipelined mode all processes share one queue; in static mode
	// each drains its own pre-assigned block.
	queue := make(chan int, len(cfg.Files))
	if cfg.Mode == ModePipelined {
		for i := range cfg.Files {
			queue <- i
		}
		close(queue)
	}

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			st := ProcStats{Process: p, Start: time.Since(epoch).Seconds()}
			var local []nova.SliceRef
			process := func(fileIdx int) {
				events, err := nova.ReadFile(cfg.Files[fileIdx])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("filebased: %s: %w", cfg.Files[fileIdx], err)
					}
					mu.Unlock()
					return
				}
				st.Files++
				for i := range events {
					st.Events++
					st.Slices += len(events[i].Slices)
					local = append(local, nova.SelectEvent(&events[i])...)
					if cfg.SliceWork > 0 {
						time.Sleep(time.Duration(len(events[i].Slices)) * cfg.SliceWork)
					}
				}
			}
			if cfg.Mode == ModePipelined {
				for idx := range queue {
					process(idx)
				}
			} else {
				for _, idx := range assignments[p] {
					process(idx)
				}
			}
			st.End = time.Since(epoch).Seconds()
			st.Selected = len(local)
			mu.Lock()
			per[p] = st
			selected = append(selected, local...)
			mu.Unlock()
			if cfg.OutDir != "" {
				writeProcessFiles(cfg.OutDir, p, local, st)
			}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}

	SortRefs(selected)
	res := Result{Selected: selected, PerProcess: per}
	tl := stats.NewTimeline()
	for _, st := range per {
		res.TotalEvents += st.Events
		res.TotalSlices += st.Slices
		tl.Record(fmt.Sprintf("proc%d", st.Process), st.Start, st.End)
	}
	start, end, ok := tl.Makespan()
	if ok {
		res.Makespan = end - start
		if res.Makespan > 0 {
			res.Throughput = float64(res.TotalSlices) / res.Makespan
		}
		res.Utilization = tl.Utilization()
	}
	return res, nil
}

// buildAssignments computes the static block decomposition (unused in
// pipelined mode but validated for both).
func buildAssignments(mode Mode, files, procs int) ([][]int, error) {
	switch mode {
	case ModePipelined, ModeStatic:
	default:
		return nil, fmt.Errorf("filebased: unknown mode %q", mode)
	}
	out := make([][]int, procs)
	// Contiguous blocks, remainder spread over the first processes —
	// exactly a start/end line-number split of the file list.
	base := files / procs
	rem := files % procs
	idx := 0
	for p := 0; p < procs; p++ {
		n := base
		if p < rem {
			n++
		}
		for i := 0; i < n; i++ {
			out[p] = append(out[p], idx)
			idx++
		}
	}
	return out, nil
}

// SortRefs orders slice references by (run, subrun, event, slice).
func SortRefs(refs []nova.SliceRef) {
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.SubRun != b.SubRun {
			return a.SubRun < b.SubRun
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		return a.Slice < b.Slice
	})
}

// writeProcessFiles mirrors the paper's harness: per-process text files
// with selected IDs and elapsed time.
func writeProcessFiles(dir string, proc int, refs []nova.SliceRef, st ProcStats) {
	_ = os.MkdirAll(dir, 0o755)
	sel, err := os.Create(filepath.Join(dir, fmt.Sprintf("selected-%04d.txt", proc)))
	if err == nil {
		w := bufio.NewWriter(sel)
		for _, r := range refs {
			fmt.Fprintln(w, r)
		}
		w.Flush()
		sel.Close()
	}
	timing, err := os.Create(filepath.Join(dir, fmt.Sprintf("timing-%04d.txt", proc)))
	if err == nil {
		fmt.Fprintf(timing, "start %f\nend %f\nfiles %d\nevents %d\nslices %d\n",
			st.Start, st.End, st.Files, st.Events, st.Slices)
		timing.Close()
	}
}

// WriteFileList writes the input list text file the harness consumes.
func WriteFileList(path string, files []string) error {
	return os.WriteFile(path, []byte(strings.Join(files, "\n")+"\n"), 0o644)
}

// ReadFileList parses a file list, ignoring blank lines and # comments.
func ReadFileList(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("filebased: %s lists no files", path)
	}
	return out, nil
}
