package filebased

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/nova"
)

func sample(t *testing.T, files int) []string {
	t.Helper()
	gen := nova.NewGenerator(nova.GenParams{Seed: 99, MeanEventsPerFile: 60, FilesPerSubRun: 2})
	paths, err := nova.GenerateSample(t.TempDir(), gen, files)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// serialTruth computes the expected selection single-threaded.
func serialTruth(t *testing.T, files []string) ([]nova.SliceRef, int) {
	t.Helper()
	var refs []nova.SliceRef
	slices := 0
	for _, p := range files {
		events, err := nova.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range events {
			slices += len(events[i].Slices)
			refs = append(refs, nova.SelectEvent(&events[i])...)
		}
	}
	SortRefs(refs)
	return refs, slices
}

func TestPipelinedMatchesSerial(t *testing.T) {
	files := sample(t, 8)
	want, slices := serialTruth(t, files)
	res, err := Run(Config{Files: files, Processes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Selected, want) {
		t.Fatalf("pipelined selection differs: %d vs %d refs", len(res.Selected), len(want))
	}
	if res.TotalSlices != slices {
		t.Fatalf("slices = %d, want %d", res.TotalSlices, slices)
	}
	if res.Throughput <= 0 || res.Makespan <= 0 {
		t.Fatalf("metrics not computed: %+v", res)
	}
}

func TestStaticMatchesPipelined(t *testing.T) {
	files := sample(t, 7)
	a, err := Run(Config{Files: files, Processes: 3, Mode: ModeStatic})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Files: files, Processes: 5, Mode: ModePipelined})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Selected, b.Selected) {
		t.Fatal("decomposition mode changed the physics result")
	}
}

func TestMoreProcessesThanFiles(t *testing.T) {
	files := sample(t, 3)
	res, err := Run(Config{Files: files, Processes: 8})
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, st := range res.PerProcess {
		if st.Files > 0 {
			busy++
		}
	}
	// Only as many processes as files can be busy — the §IV-E starvation.
	if busy > 3 {
		t.Fatalf("%d processes had files, only 3 files exist", busy)
	}
	if res.Utilization >= 1 {
		t.Fatalf("utilization should reflect idle processes: %v", res.Utilization)
	}
}

func TestBlockDecomposition(t *testing.T) {
	blocks, err := buildAssignments(ModeStatic, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7}, {8, 9}}
	if !reflect.DeepEqual(blocks, want) {
		t.Fatalf("blocks = %v", blocks)
	}
	if _, err := buildAssignments("bogus", 5, 2); err == nil {
		t.Fatal("bad mode should fail")
	}
}

func TestOutputFiles(t *testing.T) {
	files := sample(t, 2)
	out := t.TempDir()
	if _, err := Run(Config{Files: files, Processes: 2, OutDir: out}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		for _, name := range []string{"selected-%04d.txt", "timing-%04d.txt"} {
			path := filepath.Join(out, fmt.Sprintf(name, p))
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("missing %s: %v", path, err)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty file list should fail")
	}
	if _, err := Run(Config{Files: []string{"/missing"}, Processes: 1}); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestFileListRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "list.txt")
	files := []string{"/a/b.h5l", "/c/d.h5l"}
	if err := WriteFileList(path, files); err != nil {
		t.Fatal(err)
	}
	// Inject comments and blanks.
	data, _ := os.ReadFile(path)
	data = append([]byte("# comment\n\n"), data...)
	os.WriteFile(path, data, 0o644)
	got, err := ReadFileList(path)
	if err != nil || !reflect.DeepEqual(got, files) {
		t.Fatalf("list = %v %v", got, err)
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	os.WriteFile(empty, []byte("\n# nothing\n"), 0o644)
	if _, err := ReadFileList(empty); err == nil {
		t.Fatal("empty list should fail")
	}
}
