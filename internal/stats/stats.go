// Package stats provides the small statistical toolkit used by the
// benchmark harness and the evaluation reproduction: summary statistics,
// percentiles, histograms, deterministic pseudo-random distributions for
// workload synthesis, and per-rank timelines mirroring the paper's
// MPI_Wtime-based measurement methodology.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P05    float64
	P95    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
//
// The standard deviation uses the two-pass formula (mean first, then
// squared deviations from it). The one-pass sumSq/n − mean² identity
// cancels catastrophically for large-magnitude samples — ns-scale
// timestamps with µs-scale spread lose every significant digit of the
// variance in float64 — which is exactly the shape of latency data the
// observability layer feeds through here.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{N: len(xs), Min: sorted[0], Max: sorted[len(sorted)-1]}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	n := float64(len(xs))
	s.Mean = sum / n
	var sumSqDev float64
	for _, x := range xs {
		d := x - s.Mean
		sumSqDev += d * d
	}
	s.Std = math.Sqrt(sumSqDev / n)
	s.Median = percentileSorted(sorted, 50)
	s.P05 = percentileSorted(sorted, 5)
	s.P95 = percentileSorted(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It panics on an empty sample.
// Callers reading several order statistics from one sample should sort
// once and use PercentileSorted instead of paying the copy+sort per call.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile over an already-sorted sample; it does
// not copy or sort. It panics on an empty sample.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [lo, hi). It panics if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i == len(h.Counts) { // x == Hi-epsilon rounding
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// RNG is a deterministic 64-bit pseudo-random generator (xorshift128+).
// It exists so workloads are reproducible without math/rand seeding
// differences across Go versions.
type RNG struct{ s0, s1 uint64 }

// NewRNG seeds a generator. Any seed, including zero, is valid.
func NewRNG(seed uint64) *RNG {
	// SplitMix64 expansion of the seed into two non-zero state words.
	sm := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r := &RNG{s0: sm(), s1: sm()}
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
	return r
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a sample from N(mean, std²) via Box-Muller.
func (r *RNG) Normal(mean, std float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + std*z
}

// LogNormal returns a sample whose logarithm is N(mu, sigma²). HEP file
// sizes and per-file slice counts are heavy-tailed; the paper attributes the
// baseline's end-of-job straggling to exactly this spread.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns a sample with the given mean. It panics if mean <= 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exponential needs positive mean")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson sample with the given rate using Knuth's method
// for small lambda and a normal approximation above 30.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(r.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle permutes xs in place (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Timeline records [start, end] spans per participant, mirroring how the
// paper computes throughput: from the first rank's processing start to the
// last rank's processing end.
type Timeline struct {
	spans map[string][2]float64
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{spans: make(map[string][2]float64)}
}

// Record stores the span for one participant, replacing any previous span.
// It panics if end < start.
func (t *Timeline) Record(rank string, start, end float64) {
	if end < start {
		panic(fmt.Sprintf("stats: span for %s ends before it starts", rank))
	}
	t.spans[rank] = [2]float64{start, end}
}

// Makespan returns the global span (earliest start, latest end) and true, or
// zeros and false if the timeline is empty.
func (t *Timeline) Makespan() (start, end float64, ok bool) {
	if len(t.spans) == 0 {
		return 0, 0, false
	}
	start, end = math.Inf(1), math.Inf(-1)
	for _, s := range t.spans {
		start = math.Min(start, s[0])
		end = math.Max(end, s[1])
	}
	return start, end, true
}

// Throughput returns items processed per unit time over the makespan, or 0
// for an empty timeline or zero-length makespan.
func (t *Timeline) Throughput(items int) float64 {
	start, end, ok := t.Makespan()
	if !ok || end == start {
		return 0
	}
	return float64(items) / (end - start)
}

// Utilization returns the mean fraction of the makespan during which
// participants were busy — the paper quotes 24% busy cores for the
// 1929-file sample on 128 nodes.
func (t *Timeline) Utilization() float64 {
	start, end, ok := t.Makespan()
	if !ok || end == start {
		return 0
	}
	total := 0.0
	for _, s := range t.spans {
		total += s[1] - s[0]
	}
	return total / (float64(len(t.spans)) * (end - start))
}

// Ranks returns the number of participants recorded.
func (t *Timeline) Ranks() int { return len(t.spans) }
