package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Std-want) > 1e-9 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

// TestSummarizeLargeOffset is the regression test for the catastrophic
// cancellation in the one-pass variance formula: samples at a large
// offset (ns-scale timestamps) with a small spread. The old
// sumSq/n − mean² computation loses all significant digits of the
// variance in float64 (and was clamped to 0 when it went negative); the
// two-pass formula recovers the exact Std.
func TestSummarizeLargeOffset(t *testing.T) {
	const offset = 1e15 // ~ns timestamp magnitude
	xs := []float64{offset + 1, offset + 2, offset + 3, offset + 4, offset + 5}
	s := Summarize(xs)
	want := math.Sqrt(2) // population std of {1..5}
	if math.Abs(s.Std-want) > 1e-6 {
		t.Fatalf("Std = %v, want %v (catastrophic cancellation)", s.Std, want)
	}
	if s.Mean != offset+3 || s.Min != offset+1 || s.Max != offset+5 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.Median != offset+3 {
		t.Fatalf("median = %v, want %v", s.Median, offset+3)
	}
}

// TestSummarizeOrderStatsMatchPercentile pins the sort-once refactor:
// the three order statistics must agree with the (re-sorting) public
// Percentile on an unsorted input, and the input must not be mutated.
func TestSummarizeOrderStatsMatchPercentile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 2, 8, 4, 6, 0}
	orig := append([]float64(nil), xs...)
	s := Summarize(xs)
	for _, c := range []struct {
		name string
		got  float64
		p    float64
	}{
		{"median", s.Median, 50}, {"p05", s.P05, 5}, {"p95", s.P95, 95},
	} {
		if want := Percentile(xs, c.p); c.got != want {
			t.Errorf("%s = %v, want %v", c.name, c.got, want)
		}
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Summarize mutated its input")
		}
	}
}

func TestPercentileSorted(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := PercentileSorted(sorted, 50); got != 25 {
		t.Fatalf("P50 = %v, want 25", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on empty sample")
		}
	}()
	PercentileSorted(nil, 50)
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 10 || xs[3] != 40 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Percentile(nil, 50)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(5, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-5) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("normal moments: mean=%v std=%v", mean, std)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(9)
	for _, lambda := range []float64{0.5, 4, 60} {
		const n = 50000
		total := 0
		for i := 0; i < n; i++ {
			total += r.Poisson(lambda)
		}
		mean := float64(total) / n
		if math.Abs(mean-lambda) > 0.1*lambda+0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("non-positive lambda should give 0")
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("exponential mean = %v", mean)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline()
	if _, _, ok := tl.Makespan(); ok {
		t.Fatal("empty timeline should have no makespan")
	}
	if tl.Throughput(100) != 0 {
		t.Fatal("empty timeline throughput should be 0")
	}
	tl.Record("rank0", 0, 10)
	tl.Record("rank1", 2, 8)
	start, end, ok := tl.Makespan()
	if !ok || start != 0 || end != 10 {
		t.Fatalf("makespan = %v..%v ok=%v", start, end, ok)
	}
	if got := tl.Throughput(50); got != 5 {
		t.Fatalf("throughput = %v, want 5", got)
	}
	// rank0 busy 10/10, rank1 busy 6/10 -> utilization 0.8
	if got := tl.Utilization(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.8", got)
	}
	if tl.Ranks() != 2 {
		t.Fatalf("ranks = %d", tl.Ranks())
	}
}

func TestTimelineBadSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewTimeline().Record("r", 5, 4)
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal must be positive")
		}
	}
}
