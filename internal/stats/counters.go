package stats

import "sync/atomic"

// OpCounters is a lock-free counter set for one operation stream (an async
// pool, a queue, a worker group). It tracks cumulative submissions and
// completions plus an instantaneous in-flight depth with a high-water mark,
// the per-pool metrics the client AsyncEngine exports (the role §V of the
// paper assigns to the Symbiomon monitoring companion).
//
// The zero value is ready to use.
type OpCounters struct {
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	depth     atomic.Int64
	maxDepth  atomic.Int64
}

// OpSnapshot is a point-in-time copy of an OpCounters.
type OpSnapshot struct {
	// Submitted counts operations accepted into the stream.
	Submitted int64
	// Completed counts operations that finished, successfully or not.
	Completed int64
	// Failed counts completed operations that returned an error.
	Failed int64
	// Rejected counts operations refused at submission (closed stream,
	// canceled context while waiting for capacity).
	Rejected int64
	// Depth is the current number of in-flight (queued or running)
	// operations; MaxDepth is its high-water mark.
	Depth    int64
	MaxDepth int64
}

// Submitted records one accepted operation, raising the depth gauge.
func (c *OpCounters) Submitted() {
	c.submitted.Add(1)
	d := c.depth.Add(1)
	for {
		max := c.maxDepth.Load()
		if d <= max || c.maxDepth.CompareAndSwap(max, d) {
			return
		}
	}
}

// Completed records one finished operation, lowering the depth gauge.
func (c *OpCounters) Completed(err error) {
	c.completed.Add(1)
	if err != nil {
		c.failed.Add(1)
	}
	c.depth.Add(-1)
}

// Rejected records one operation refused at submission.
func (c *OpCounters) Rejected() { c.rejected.Add(1) }

// Snapshot returns a point-in-time copy of the counters.
func (c *OpCounters) Snapshot() OpSnapshot {
	return OpSnapshot{
		Submitted: c.submitted.Load(),
		Completed: c.completed.Load(),
		Failed:    c.failed.Load(),
		Rejected:  c.rejected.Load(),
		Depth:     c.depth.Load(),
		MaxDepth:  c.maxDepth.Load(),
	}
}
