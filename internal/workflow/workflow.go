// Package workflow implements the HEPnOS-based candidate-selection
// application of §IV-B: an MPI program in which each rank uses the
// ParallelEventProcessor to fetch events, deserializes the NOvA slice
// product, runs the CAFAna-style selection, and reduces the accepted slice
// IDs to rank 0, which writes them out. Its results are bit-comparable
// with package filebased — the paper's correctness criterion.
package workflow

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/filebased"
	"github.com/hep-on-hpc/hepnos-go/internal/mpi"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
	"github.com/hep-on-hpc/hepnos-go/internal/serde"
)

// Config tunes the HEPnOS-based selection run.
type Config struct {
	// Dataset is the dataset path holding the ingested events.
	Dataset string
	// Label is the product label the loader stored slices under.
	Label string
	// Ranks is the MPI world size.
	Ranks int
	// PEP carries the ParallelEventProcessor tuning (batch sizes,
	// readers). Prefetch for the slice product is added automatically.
	PEP core.PEPOptions
	// NoPrefetch disables product prefetching (ablation knob).
	NoPrefetch bool
	// OutFile, when set, receives the accepted IDs (written by rank 0
	// after the reduction, as in the paper).
	OutFile string
	// TimelineDir, when set, receives one timing file per rank ("we write
	// these timestamps to a separate file for each rank", §IV-B); the
	// files are analyzed offline to reconstruct the run.
	TimelineDir string
	// SliceWork emulates per-slice analysis compute (the paper's KNL
	// cores spend ~0.3 ms/slice; a laptop's selection alone is ~1 µs).
	// Zero adds nothing.
	SliceWork time.Duration
}

// Result is the workflow outcome, mirroring filebased.Result where
// meaningful.
type Result struct {
	Selected    []nova.SliceRef
	TotalEvents int64
	TotalSlices int
	Makespan    float64
	Throughput  float64 // slices per second over the makespan
	Stats       core.PEPStats
}

// Run executes the selection over an in-process MPI world.
func Run(ctx context.Context, ds *core.DataStore, cfg Config) (Result, error) {
	if cfg.Ranks <= 0 {
		cfg.Ranks = 1
	}
	if cfg.Label == "" {
		cfg.Label = "slices"
	}
	dataset, err := ds.OpenDataSet(ctx, cfg.Dataset)
	if err != nil {
		return Result{}, err
	}
	opts := cfg.PEP
	if !cfg.NoPrefetch {
		opts.Prefetch = append(opts.Prefetch, core.SelectorFor(cfg.Label, []nova.Slice{}))
	}

	var (
		mu       sync.Mutex
		result   Result
		firstErr error
	)
	mpi.NewWorld(cfg.Ranks).Run(func(c *mpi.Comm) {
		var local []nova.SliceRef
		localSlices := 0
		stats, err := ds.ProcessEvents(ctx, c, dataset, opts, func(ev *core.Event) error {
			var slices []nova.Slice
			if err := ev.Load(ctx, cfg.Label, &slices); err != nil {
				return err
			}
			id := ev.ID()
			nev := nova.Event{Run: id.Run, SubRun: id.SubRun, Event: id.Event, Slices: slices}
			local = append(local, nova.SelectEvent(&nev)...)
			localSlices += len(slices)
			if cfg.SliceWork > 0 {
				time.Sleep(time.Duration(len(slices)) * cfg.SliceWork)
			}
			return nil
		})

		// Reduce the accepted IDs to rank 0 (an MPI gather of serialized
		// ref lists plays the paper's reduction).
		payload, merr := serde.Marshal(local)
		if merr != nil && err == nil {
			err = merr
		}
		parts := c.Gather(0, payload)
		totalSlices := c.ReduceInt64(0, int64(localSlices), mpi.OpSum)

		if cfg.TimelineDir != "" {
			if werr := writeRankTimeline(cfg.TimelineDir, c.Rank(), stats, localSlices, len(local)); werr != nil && err == nil {
				err = werr
			}
		}

		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		if c.Rank() == 0 {
			for _, p := range parts {
				var refs []nova.SliceRef
				if derr := serde.Unmarshal(p, &refs); derr != nil {
					if firstErr == nil {
						firstErr = derr
					}
					continue
				}
				result.Selected = append(result.Selected, refs...)
			}
			result.Stats = stats
			result.TotalEvents = stats.TotalEvents
			result.TotalSlices = int(totalSlices)
			result.Makespan = stats.Makespan
			if stats.Makespan > 0 {
				result.Throughput = float64(totalSlices) / stats.Makespan
			}
		}
	})
	if firstErr != nil {
		return Result{}, firstErr
	}
	filebased.SortRefs(result.Selected)
	if cfg.OutFile != "" {
		if err := writeRefs(cfg.OutFile, result.Selected); err != nil {
			return result, err
		}
	}
	return result, nil
}

// writeRankTimeline writes one rank's MPI_Wtime-style timestamps and
// counters for offline analysis.
func writeRankTimeline(dir string, rank int, stats core.PEPStats, slices, accepted int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(fmt.Sprintf("%s/rank-%04d.txt", dir, rank))
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "rank %d\nstart %f\nend %f\nevents %d\nslices %d\naccepted %d\ndegraded %d\n",
		rank, stats.LocalStart, stats.LocalEnd, stats.LocalEvents, slices, accepted, stats.LocalDegraded)
	return f.Close()
}

// writeRefs writes the accepted IDs, one per line.
func writeRefs(path string, refs []nova.SliceRef) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range refs {
		fmt.Fprintln(w, r)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
