package workflow

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/dataloader"
	"github.com/hep-on-hpc/hepnos-go/internal/filebased"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
)

var seq atomic.Int64

// prepare generates files, deploys a service and ingests the sample,
// returning the store and the file paths.
func prepare(t *testing.T, files int, backend string) (*core.DataStore, []string) {
	t.Helper()
	gen := nova.NewGenerator(nova.GenParams{Seed: 1234, MeanEventsPerFile: 80, FilesPerSubRun: 2})
	paths, err := nova.GenerateSample(t.TempDir(), gen, files)
	if err != nil {
		t.Fatal(err)
	}
	spec := bedrock.DeploySpec{
		Servers:             2,
		ProvidersPerServer:  2,
		EventDBsPerServer:   4,
		ProductDBsPerServer: 4,
		Backend:             backend,
		NamePrefix:          fmt.Sprintf("wf-%d", seq.Add(1)),
	}
	if backend == "lsm" {
		spec.PathBase = t.TempDir()
	}
	d, err := bedrock.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	ds, err := core.Connect(context.Background(), core.ClientConfig{Group: d.Group})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ds.Close)

	ctx := context.Background()
	dataset, err := ds.CreateDataSet(ctx, "fermilab/nova")
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := dataloader.InspectFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataloader.Bind(nova.Slice{}, schemas[0])
	if err != nil {
		t.Fatal(err)
	}
	loader := &dataloader.Loader{DS: ds, Label: "slices", Parallelism: 4}
	if _, err := loader.IngestFiles(ctx, dataset, b, paths); err != nil {
		t.Fatal(err)
	}
	return ds, paths
}

// TestWorkflowsAgree is the paper's correctness criterion (§IV): "the IDs
// of the accepted slices are accumulated so that we can assure that the
// two applications have obtained the same results."
func TestWorkflowsAgree(t *testing.T) {
	ds, paths := prepare(t, 6, "map")

	fileRes, err := filebased.Run(filebased.Config{Files: paths, Processes: 4})
	if err != nil {
		t.Fatal(err)
	}
	hepRes, err := Run(context.Background(), ds, Config{
		Dataset: "fermilab/nova",
		Ranks:   5,
		PEP:     core.PEPOptions{WorkBatchSize: 16, LoadBatchSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hepRes.Selected) == 0 {
		t.Fatal("HEPnOS workflow selected nothing; sample too small to validate")
	}
	if !reflect.DeepEqual(fileRes.Selected, hepRes.Selected) {
		t.Fatalf("workflows disagree: file-based %d refs, HEPnOS %d refs",
			len(fileRes.Selected), len(hepRes.Selected))
	}
	if fileRes.TotalSlices != hepRes.TotalSlices {
		t.Fatalf("slice counts differ: %d vs %d", fileRes.TotalSlices, hepRes.TotalSlices)
	}
	if hepRes.Throughput <= 0 {
		t.Fatalf("throughput = %v", hepRes.Throughput)
	}
}

func TestWorkflowsAgreeOnLSM(t *testing.T) {
	ds, paths := prepare(t, 4, "lsm")
	fileRes, err := filebased.Run(filebased.Config{Files: paths, Processes: 2})
	if err != nil {
		t.Fatal(err)
	}
	hepRes, err := Run(context.Background(), ds, Config{Dataset: "fermilab/nova", Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fileRes.Selected, hepRes.Selected) {
		t.Fatal("workflows disagree on the lsm backend")
	}
}

func TestPrefetchAblationAgrees(t *testing.T) {
	ds, _ := prepare(t, 4, "map")
	ctx := context.Background()
	with, err := Run(ctx, ds, Config{Dataset: "fermilab/nova", Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(ctx, ds, Config{Dataset: "fermilab/nova", Ranks: 3, NoPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(with.Selected, without.Selected) {
		t.Fatal("prefetching changed the physics result")
	}
}

func TestOutFile(t *testing.T) {
	ds, _ := prepare(t, 2, "map")
	out := filepath.Join(t.TempDir(), "accepted.txt")
	res, err := Run(context.Background(), ds, Config{Dataset: "fermilab/nova", Ranks: 2, OutFile: out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n")
	if len(res.Selected) > 0 && lines != len(res.Selected)-1 {
		t.Fatalf("out file has %d lines for %d refs", lines+1, len(res.Selected))
	}
}

func TestMissingDataset(t *testing.T) {
	ds, _ := prepare(t, 2, "map")
	if _, err := Run(context.Background(), ds, Config{Dataset: "ghost"}); err == nil {
		t.Fatal("missing dataset should fail")
	}
}

func TestTimelineFiles(t *testing.T) {
	ds, _ := prepare(t, 2, "map")
	dir := filepath.Join(t.TempDir(), "timings")
	_, err := Run(context.Background(), ds, Config{
		Dataset: "fermilab/nova", Ranks: 3, TimelineDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("rank-%04d.txt", r)))
		if err != nil {
			t.Fatalf("rank %d timeline: %v", r, err)
		}
		for _, want := range []string{"start ", "end ", "events ", "slices "} {
			if !strings.Contains(string(data), want) {
				t.Fatalf("rank %d timeline missing %q:\n%s", r, want, data)
			}
		}
	}
}

// TestStressLargeSample pushes a bigger dataset through the full pipeline:
// ingest, both workflows, agreement. Skipped with -short.
func TestStressLargeSample(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	gen := nova.NewGenerator(nova.GenParams{Seed: 77, MeanEventsPerFile: 600, FilesPerSubRun: 3})
	paths, err := nova.GenerateSample(t.TempDir(), gen, 24) // ~14k events / ~59k slices
	if err != nil {
		t.Fatal(err)
	}
	d, err := bedrock.Deploy(bedrock.DeploySpec{
		Servers:             3,
		ProvidersPerServer:  4,
		EventDBsPerServer:   8,
		ProductDBsPerServer: 8,
		NamePrefix:          fmt.Sprintf("wf-stress-%d", seq.Add(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	ds, err := core.Connect(context.Background(), core.ClientConfig{Group: d.Group})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ds.Close)
	ctx := context.Background()
	dataset, err := ds.CreateDataSet(ctx, "stress/nova")
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := dataloader.InspectFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataloader.Bind(nova.Slice{}, schemas[0])
	if err != nil {
		t.Fatal(err)
	}
	loader := &dataloader.Loader{DS: ds, Label: "slices", Parallelism: 8}
	st, err := loader.IngestFiles(ctx, dataset, b, paths)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events < 10000 {
		t.Fatalf("stress sample too small: %d events", st.Events)
	}

	fileRes, err := filebased.Run(filebased.Config{Files: paths, Processes: 8})
	if err != nil {
		t.Fatal(err)
	}
	hepRes, err := Run(ctx, ds, Config{Dataset: "stress/nova", Ranks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if int64(st.Events) != hepRes.TotalEvents {
		t.Fatalf("hepnos saw %d events, ingested %d", hepRes.TotalEvents, st.Events)
	}
	if !reflect.DeepEqual(fileRes.Selected, hepRes.Selected) {
		t.Fatalf("stress workflows disagree: %d vs %d refs",
			len(fileRes.Selected), len(hepRes.Selected))
	}
}

// TestRealFileCountCap demonstrates the paper's central claim on the REAL
// system (no simulation): with per-slice compute emulating the paper's KNL
// cost, the file-based workflow cannot use more processes than files,
// while HEPnOS keeps scaling past that limit.
func TestRealFileCountCap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive comparison skipped in -short mode")
	}
	const files, ranks = 4, 16
	work := 500 * time.Microsecond

	gen := nova.NewGenerator(nova.GenParams{Seed: 99, MeanEventsPerFile: 150, FilesPerSubRun: 2})
	paths, err := nova.GenerateSample(t.TempDir(), gen, files)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bedrock.Deploy(bedrock.DeploySpec{
		Servers: 2, ProvidersPerServer: 2,
		EventDBsPerServer: 4, ProductDBsPerServer: 4,
		NamePrefix: fmt.Sprintf("wf-cap-%d", seq.Add(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	ctx := context.Background()
	ds, err := core.Connect(ctx, core.ClientConfig{Group: d.Group})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ds.Close)
	dataset, err := ds.CreateDataSet(ctx, "cap/nova")
	if err != nil {
		t.Fatal(err)
	}
	schemas, _ := dataloader.InspectFile(paths[0])
	b, _ := dataloader.Bind(nova.Slice{}, schemas[0])
	loader := &dataloader.Loader{DS: ds, Label: "slices", Parallelism: 4}
	if _, err := loader.IngestFiles(ctx, dataset, b, paths); err != nil {
		t.Fatal(err)
	}

	fres, err := filebased.Run(filebased.Config{Files: paths, Processes: ranks, SliceWork: work})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Run(ctx, ds, Config{Dataset: "cap/nova", Ranks: ranks, SliceWork: work})
	if err != nil {
		t.Fatal(err)
	}
	// 16 workers on 4 files: file-based can use at most 4; HEPnOS shares
	// events across all 16. Expect a clear (>1.3x) advantage even with
	// scheduling noise.
	if hres.Throughput < 1.3*fres.Throughput {
		t.Fatalf("hepnos %f <= 1.3 x file-based %f despite 4x file starvation",
			hres.Throughput, fres.Throughput)
	}
	busy := 0
	for _, p := range fres.PerProcess {
		if p.Files > 0 {
			busy++
		}
	}
	if busy > files {
		t.Fatalf("%d busy processes with only %d files", busy, files)
	}
}
