// Package fabric is the Go analog of the Mercury RPC library that HEPnOS
// uses for communication (§II-B of the paper), with the transport fidelity
// caveats documented in DESIGN.md: no OS-bypass RDMA exists in Go, so the
// package reproduces Mercury's *programming model* — registered RPCs,
// handler dispatch, explicit bulk handles for large transfers — over two
// transports:
//
//   - "inproc": endpoints inside one process, connected through an in-memory
//     registry. This is the analog of Mercury's na+sm and is what tests,
//     examples and benchmarks use. An optional cost model (NetSim) imposes
//     latency, bandwidth and NIC injection limits so contention phenomena
//     remain observable.
//   - "tcp": length-prefixed frames over real sockets, so a service can be
//     deployed across actual processes and machines.
//
// Addresses are URIs: "inproc://name" or "tcp://host:port".
package fabric

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
)

// Address identifies an endpoint, e.g. "inproc://server0" or
// "tcp://127.0.0.1:9999".
type Address string

// Scheme returns the transport scheme of the address.
func (a Address) Scheme() string {
	if i := strings.Index(string(a), "://"); i >= 0 {
		return string(a)[:i]
	}
	return ""
}

// Errors returned by fabric operations.
var (
	ErrUnreachable = errors.New("fabric: address unreachable")
	ErrNoSuchRPC   = errors.New("fabric: no such RPC registered")
	ErrClosed      = errors.New("fabric: endpoint closed")
)

// RemoteError wraps an error string produced by a remote handler so callers
// can distinguish transport failures from application failures.
type RemoteError struct {
	RPC string
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("fabric: remote %s failed: %s", e.RPC, e.Msg)
}

// InjectedFault marks an error produced by a fault hook (NetSim.Fault or
// a serve-side hook). Transports propagate it as a message *loss* — a
// transport-level failure — rather than converting it to a RemoteError,
// because an injected drop means the handler never ran and re-sending is
// safe. Unwrap exposes the scenario's error for errors.Is tests.
type InjectedFault struct{ Err error }

// Error implements the error interface.
func (f *InjectedFault) Error() string { return "fabric: injected fault: " + f.Err.Error() }

// Unwrap exposes the injected cause.
func (f *InjectedFault) Unwrap() error { return f.Err }

// RetryableError is the fabric's retry classifier for resilience
// policies: it reports whether err is a transport-level failure — the
// request cannot have been executed by a remote handler, so re-sending
// is safe. Application errors (RemoteError) and local terminal states
// are never retryable.
func RetryableError(err error) bool {
	if err == nil {
		return false
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return false
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrNoSuchRPC) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// FaultHook is a server-side fault injection point: it observes each
// incoming request before dispatch and may return an error to drop it.
// peer is the caller's address, size the payload length.
type FaultHook func(peer Address, rpc string, size int) error

// Request is what a handler receives.
type Request struct {
	RPC     string
	Payload []byte
	From    Address // the caller's address (reply path for bulk pulls)

	ep *Endpoint
}

// PullBulk transfers the remote region described by h from the requester's
// exposed memory into a fresh buffer — the analog of HG_Bulk_transfer with
// HG_BULK_PULL, which Yokan uses for large values and batches.
func (r *Request) PullBulk(ctx context.Context, h BulkHandle) ([]byte, error) {
	if r.From == "" {
		return nil, errors.New("fabric: request has no reply address for bulk pull")
	}
	return r.ep.pullBulk(ctx, r.From, h)
}

// Handler processes one RPC and returns the response payload.
type Handler func(ctx context.Context, req *Request) ([]byte, error)

// Stats counts endpoint activity.
type Stats struct {
	CallsSent     int64
	CallsServed   int64
	BytesSent     int64
	BytesReceived int64
	BulkPulls     int64
	BulkBytes     int64
	Errors        int64
}

type statsCollector struct {
	callsSent     atomic.Int64
	callsServed   atomic.Int64
	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	bulkPulls     atomic.Int64
	bulkBytes     atomic.Int64
	errors        atomic.Int64
}

func (s *statsCollector) snapshot() Stats {
	return Stats{
		CallsSent:     s.callsSent.Load(),
		CallsServed:   s.callsServed.Load(),
		BytesSent:     s.bytesSent.Load(),
		BytesReceived: s.bytesReceived.Load(),
		BulkPulls:     s.bulkPulls.Load(),
		BulkBytes:     s.bulkBytes.Load(),
		Errors:        s.errors.Load(),
	}
}

// Dispatcher decides where handler invocations run. The default runs each
// handler on its own goroutine; Margo installs a dispatcher that pushes the
// invocation into an Argobots pool instead.
type Dispatcher func(run func())

// Endpoint is a communication endpoint: it serves registered RPCs and
// issues calls to other endpoints.
type Endpoint struct {
	addr  Address
	trans transport
	sim   *NetSim            // nil means free, instant network
	res   *resilience.Policy // nil means single-shot calls

	mu         sync.RWMutex
	handlers   map[string]Handler
	dispatch   Dispatcher
	serveFault FaultHook
	closed     bool

	bulk   bulkTable
	stats  statsCollector
	prof   profiler
	tracer *obs.Tracer // nil disables span recording
}

// Option configures an endpoint at Listen time.
type Option func(*Endpoint)

// WithNetSim attaches a network cost model to the endpoint. All of the
// endpoint's sends pay the model's latency/bandwidth/injection costs.
func WithNetSim(sim *NetSim) Option {
	return func(e *Endpoint) { e.sim = sim }
}

// WithDispatcher sets how incoming handler invocations are scheduled.
func WithDispatcher(d Dispatcher) Option {
	return func(e *Endpoint) { e.dispatch = d }
}

// WithResilience attaches a retry/backoff/circuit-breaker policy to the
// endpoint's outgoing calls. If the policy has no classifier, the
// fabric's RetryableError is installed so application (RemoteError)
// failures are never re-sent. The policy should be shared by everything
// talking through this endpoint so its retry budget and breakers see the
// whole traffic.
func WithResilience(p *resilience.Policy) Option {
	return func(e *Endpoint) {
		if p != nil && p.Retryable == nil {
			p.Retryable = RetryableError
		}
		e.res = p
	}
}

// WithTracer attaches a span tracer to the endpoint. Every outgoing call
// records a client span carrying the caller's active span (from the
// context) as parent, and its span context travels in the RPC envelope;
// every served request records a server span parented by the incoming
// context — the linked two-sided view of each RPC.
func WithTracer(t *obs.Tracer) Option {
	return func(e *Endpoint) { e.tracer = t }
}

// Listen creates an endpoint on the given address. Supported schemes are
// "inproc" and "tcp". For "tcp", a port of 0 picks a free port; the actual
// address is available from Addr.
func Listen(addr Address, opts ...Option) (*Endpoint, error) {
	e := &Endpoint{
		handlers: make(map[string]Handler),
		dispatch: func(run func()) { go run() },
	}
	e.bulk.init()
	for _, o := range opts {
		o(e)
	}
	switch addr.Scheme() {
	case "inproc":
		t, actual, err := listenInproc(e, addr)
		if err != nil {
			return nil, err
		}
		e.trans, e.addr = t, actual
	case "tcp":
		t, actual, err := listenTCP(e, addr)
		if err != nil {
			return nil, err
		}
		e.trans, e.addr = t, actual
	default:
		return nil, fmt.Errorf("fabric: unsupported scheme in %q", addr)
	}
	e.registerBulkService()
	return e, nil
}

// Addr returns the endpoint's reachable address.
func (e *Endpoint) Addr() Address { return e.addr }

// Tracer returns the endpoint's span tracer (nil when tracing is off).
func (e *Endpoint) Tracer() *obs.Tracer { return e.tracer }

// Stats returns a snapshot of the endpoint's activity counters.
func (e *Endpoint) Stats() Stats { return e.stats.snapshot() }

// Register installs a handler for the named RPC. Registering twice replaces
// the handler, matching HG_Register semantics.
func (e *Endpoint) Register(rpc string, h Handler) {
	if h == nil {
		panic("fabric: nil handler for " + rpc)
	}
	e.mu.Lock()
	e.handlers[rpc] = h
	e.mu.Unlock()
}

// SetDispatcher replaces the handler dispatcher (used by Margo after the
// endpoint is created).
func (e *Endpoint) SetDispatcher(d Dispatcher) {
	if d == nil {
		panic("fabric: nil dispatcher")
	}
	e.mu.Lock()
	e.dispatch = d
	e.mu.Unlock()
}

// SetServeFault installs (or, with nil, removes) a server-side fault
// hook consulted before dispatching each incoming request. A non-nil
// error from the hook drops the request: the caller observes a
// transport-level failure (InjectedFault), never a RemoteError, because
// the handler was never run. Safe to call while the endpoint is serving
// — chaos scenarios install and heal hooks on live deployments.
func (e *Endpoint) SetServeFault(h FaultHook) {
	e.mu.Lock()
	e.serveFault = h
	e.mu.Unlock()
}

// Call sends an RPC to the target and waits for its response. With a
// resilience policy attached (WithResilience), transport-level failures
// are retried under that policy — each attempt is a fresh send paying
// the NetSim cost model again.
//
// The response is treated as GC-owned: the transport's receive buffer is
// never recycled, so the caller may retain the bytes freely. Hot paths
// that can bound the response's lifetime should use CallBorrow, which
// returns the buffer to the transport's pool.
func (e *Endpoint) Call(ctx context.Context, target Address, rpc string, payload []byte) ([]byte, error) {
	resp, _, err := e.CallBorrow(ctx, target, rpc, payload)
	return resp, err
}

// CallBorrow is Call with explicit response-buffer ownership: the returned
// response may be a borrowed view into a pooled transport buffer, and done
// (when non-nil) releases it. The contract (DESIGN.md §12):
//
//   - After calling done, the response and every view into it are dead.
//   - done may be called at most once; calling it is optional — skipping it
//     leaks nothing, the buffer just falls to the GC and the pool misses a
//     reuse. Callers that retain views of the response (borrowed decode)
//     must NOT call done.
//   - The request payload is never retained by the fabric: once CallBorrow
//     returns, the caller may recycle the payload's buffer.
func (e *Endpoint) CallBorrow(ctx context.Context, target Address, rpc string, payload []byte) ([]byte, func(), error) {
	if e.res == nil {
		return e.callOnce(ctx, target, rpc, payload)
	}
	var done func()
	resp, err := resilience.Do(ctx, e.res, string(target), func(ctx context.Context) ([]byte, error) {
		r, d, err := e.callOnce(ctx, target, rpc, payload)
		done = d
		return r, err
	})
	if err != nil {
		return nil, nil, err
	}
	return resp, done, nil
}

// callOnce is a single unretried send attempt. done is nil on error and on
// transports whose responses are GC-owned (inproc).
func (e *Endpoint) callOnce(ctx context.Context, target Address, rpc string, payload []byte) ([]byte, func(), error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, nil, ErrClosed
	}
	// Each attempt is its own client span: under a retrying policy the
	// trace shows every send, not just the one that succeeded. The span and
	// the breadcrumb profile open before the NetSim gate so a simulated
	// message loss is still a visible failed attempt.
	parent := obs.SpanFromContext(ctx)
	sp := e.tracer.Start(rpc, obs.KindClient, parent, string(target))
	envSC := sp.Context()
	if !envSC.Valid() {
		// No local tracer: still forward the caller's context so traces
		// survive an uninstrumented hop.
		envSC = parent
	}
	start := time.Now()
	if e.sim != nil {
		if err := e.sim.beforeSend(ctx, target, rpc, len(payload)); err != nil {
			e.stats.errors.Add(1)
			e.prof.record(rpc, time.Since(start), true)
			sp.End(err)
			return nil, nil, err
		}
	}
	e.stats.callsSent.Add(1)
	e.stats.bytesSent.Add(int64(len(payload)))
	resp, done, err := e.trans.call(ctx, target, rpc, payload, envSC)
	e.prof.record(rpc, time.Since(start), err != nil)
	sp.End(err)
	if err != nil {
		e.stats.errors.Add(1)
		return nil, nil, err
	}
	e.stats.bytesReceived.Add(int64(len(resp)))
	return resp, done, nil
}

// Close shuts the endpoint down. In-flight calls may fail with ErrClosed.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	return e.trans.close()
}

// serve runs the handler for an incoming request and returns the response
// payload or an error to be sent back. It is invoked by transports; sc is
// the caller's span context from the envelope (zero when the caller did
// not trace).
func (e *Endpoint) serve(ctx context.Context, from Address, rpc string, payload []byte, sc obs.SpanContext) ([]byte, error) {
	e.mu.RLock()
	h, ok := e.handlers[rpc]
	closed := e.closed
	dispatch := e.dispatch
	fault := e.serveFault
	e.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if fault != nil {
		if err := fault(from, rpc, len(payload)); err != nil {
			e.stats.errors.Add(1)
			return nil, &InjectedFault{Err: err}
		}
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q at %s", ErrNoSuchRPC, rpc, e.addr)
	}
	e.stats.callsServed.Add(1)

	// The server span opens before dispatch, so it measures queue wait
	// plus execution — the difference against the handler's own internal
	// span (opened after the pool picks the work up) is pure queue wait.
	srv := e.tracer.Start(rpc, obs.KindServer, sc, string(from))
	active := srv.Context()
	if !active.Valid() {
		active = sc // untraced hop: keep forwarding the caller's context
	}
	hctx := obs.ContextWithSpan(ctx, active)

	type result struct {
		resp []byte
		err  error
	}
	done := make(chan result, 1)
	dispatch(func() {
		resp, err := h(hctx, &Request{RPC: rpc, Payload: payload, From: from, ep: e})
		done <- result{resp, err}
	})
	select {
	case r := <-done:
		srv.End(r.err)
		return r.resp, r.err
	case <-ctx.Done():
		srv.End(ctx.Err())
		return nil, ctx.Err()
	}
}

// transport is the wire-level half of an endpoint. sc travels in the
// request envelope so the target can link its server span to the caller.
//
// call must not retain payload after returning. The returned response may
// be a borrowed view into a transport-owned buffer; done (which may be
// nil) releases that buffer back to the transport's pool, after which the
// response bytes are dead. done is nil whenever the response is plain
// GC-owned memory.
type transport interface {
	call(ctx context.Context, target Address, rpc string, payload []byte, sc obs.SpanContext) (resp []byte, done func(), err error)
	close() error
}
