// Package fabric is the Go analog of the Mercury RPC library that HEPnOS
// uses for communication (§II-B of the paper), with the transport fidelity
// caveats documented in DESIGN.md: no OS-bypass RDMA exists in Go, so the
// package reproduces Mercury's *programming model* — registered RPCs,
// handler dispatch, explicit bulk handles for large transfers — over two
// transports:
//
//   - "inproc": endpoints inside one process, connected through an in-memory
//     registry. This is the analog of Mercury's na+sm and is what tests,
//     examples and benchmarks use. An optional cost model (NetSim) imposes
//     latency, bandwidth and NIC injection limits so contention phenomena
//     remain observable.
//   - "tcp": length-prefixed frames over real sockets, so a service can be
//     deployed across actual processes and machines.
//
// Addresses are URIs: "inproc://name" or "tcp://host:port".
package fabric

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
)

// Address identifies an endpoint, e.g. "inproc://server0" or
// "tcp://127.0.0.1:9999".
type Address string

// Scheme returns the transport scheme of the address.
func (a Address) Scheme() string {
	if i := strings.Index(string(a), "://"); i >= 0 {
		return string(a)[:i]
	}
	return ""
}

// Errors returned by fabric operations, as classed sentinels on the xerr
// taxonomy: unreachable is the canonical (retryable, local) unavailable;
// an unknown RPC is an invalid request that no re-send can fix; a closed
// endpoint is a terminal local state.
var (
	ErrUnreachable = xerr.Sentinel("fabric/unreachable", xerr.ClassUnavailable, "fabric: address unreachable")
	ErrNoSuchRPC   = xerr.Sentinel("fabric/no_such_rpc", xerr.ClassInvalid, "fabric: no such RPC registered")
	ErrClosed      = xerr.Sentinel("fabric/closed", xerr.ClassClosed, "fabric: endpoint closed")
)

// RemoteError wraps an error string produced by a remote handler that
// carried no classification — the legacy path for handlers whose errors
// are not on the xerr taxonomy. Classified handler errors cross the wire
// as typed frames instead (statusTyped) and never become RemoteError.
type RemoteError struct {
	RPC string
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("fabric: remote %s failed: %s", e.RPC, e.Msg)
}

// ErrRemote marks the error as produced across an RPC boundary: the
// handler ran, so blind re-send is not safe (xerr.Retryable refuses it).
func (e *RemoteError) ErrRemote() bool { return true }

// InjectedFault marks an error produced by a fault hook (NetSim.Fault or
// a serve-side hook). Transports propagate it as a message *loss* — a
// transport-level failure — rather than converting it to a RemoteError,
// because an injected drop means the handler never ran and re-sending is
// safe. Unwrap exposes the scenario's error for errors.Is tests.
type InjectedFault struct{ Err error }

// Error implements the error interface.
func (f *InjectedFault) Error() string { return "fabric: injected fault: " + f.Err.Error() }

// Unwrap exposes the injected cause.
func (f *InjectedFault) Unwrap() error { return f.Err }

// ErrClass classifies every injected loss as unavailable: the handler
// never ran, so the fault is retryable by the one retry rule regardless
// of what error the chaos scenario chose to inject.
func (f *InjectedFault) ErrClass() xerr.Class { return xerr.ClassUnavailable }

// RetryableError is the fabric's retry classifier for resilience
// policies — now one line of classification instead of a pattern-match:
// only a *local* unavailable (unreachable target, injected drop, open
// circuit) can be re-sent, because the request cannot have been executed
// by a remote handler. Remote answers of any class, sheds, interrupts
// and application failures are never retryable.
func RetryableError(err error) bool {
	return xerr.Retryable(err)
}

// FaultHook is a server-side fault injection point: it observes each
// incoming request before dispatch and may return an error to drop it.
// peer is the caller's address, size the payload length, tenant the QoS
// tenant from the request envelope (empty for untagged traffic) — so
// chaos scenarios can storm one tenant while sparing another.
type FaultHook func(peer Address, rpc string, size int, tenant string) error

// Request is what a handler receives.
type Request struct {
	RPC     string
	Payload []byte
	From    Address // the caller's address (reply path for bulk pulls)
	// Identity is the QoS identity from the request envelope (zero when
	// the caller is pre-QoS or untagged).
	Identity qos.Identity

	ep *Endpoint
}

// PullBulk transfers the remote region described by h from the requester's
// exposed memory into a fresh buffer — the analog of HG_Bulk_transfer with
// HG_BULK_PULL, which Yokan uses for large values and batches.
func (r *Request) PullBulk(ctx context.Context, h BulkHandle) ([]byte, error) {
	if r.From == "" {
		return nil, errors.New("fabric: request has no reply address for bulk pull")
	}
	return r.ep.pullBulk(ctx, r.From, h)
}

// Handler processes one RPC and returns the response payload.
type Handler func(ctx context.Context, req *Request) ([]byte, error)

// Stats counts endpoint activity.
type Stats struct {
	CallsSent     int64
	CallsServed   int64
	BytesSent     int64
	BytesReceived int64
	BulkPulls     int64
	BulkBytes     int64
	Errors        int64
}

type statsCollector struct {
	callsSent     atomic.Int64
	callsServed   atomic.Int64
	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	bulkPulls     atomic.Int64
	bulkBytes     atomic.Int64
	errors        atomic.Int64
}

func (s *statsCollector) snapshot() Stats {
	return Stats{
		CallsSent:     s.callsSent.Load(),
		CallsServed:   s.callsServed.Load(),
		BytesSent:     s.bytesSent.Load(),
		BytesReceived: s.bytesReceived.Load(),
		BulkPulls:     s.bulkPulls.Load(),
		BulkBytes:     s.bulkBytes.Load(),
		Errors:        s.errors.Load(),
	}
}

// Dispatcher decides where handler invocations run. The default runs each
// handler on its own goroutine; Margo installs a dispatcher that pushes the
// invocation into an Argobots pool instead.
type Dispatcher func(run func())

// Endpoint is a communication endpoint: it serves registered RPCs and
// issues calls to other endpoints.
type Endpoint struct {
	addr  Address
	trans transport
	sim   *NetSim            // nil means free, instant network
	res   *resilience.Policy // nil means single-shot calls

	mu         sync.RWMutex
	handlers   map[string]Handler
	dispatch   Dispatcher
	serveFault FaultHook
	closed     bool

	bulk   bulkTable
	stats  statsCollector
	prof   profiler
	tracer *obs.Tracer // nil disables span recording

	// errClasses counts every error this endpoint observed (calls it sent,
	// requests it served), keyed by xerr class — the feed behind
	// hepnos_errors_total{class=...}.
	errClasses sync.Map // string class -> *atomic.Int64

	tenant       string                               // default tenant stamped on outgoing calls
	pressureSrc  atomic.Pointer[func() uint8]         // server side: gate's pressure, pushed in replies
	pressureHook atomic.Pointer[func(Address, uint8)] // client side: observes pushed pressure
}

// Option configures an endpoint at Listen time.
type Option func(*Endpoint)

// WithNetSim attaches a network cost model to the endpoint. All of the
// endpoint's sends pay the model's latency/bandwidth/injection costs.
func WithNetSim(sim *NetSim) Option {
	return func(e *Endpoint) { e.sim = sim }
}

// WithDispatcher sets how incoming handler invocations are scheduled.
func WithDispatcher(d Dispatcher) Option {
	return func(e *Endpoint) { e.dispatch = d }
}

// WithResilience attaches a retry/backoff/circuit-breaker policy to the
// endpoint's outgoing calls. If the policy has no classifier, the
// fabric's RetryableError is installed so application (RemoteError)
// failures are never re-sent. The policy should be shared by everything
// talking through this endpoint so its retry budget and breakers see the
// whole traffic.
func WithResilience(p *resilience.Policy) Option {
	return func(e *Endpoint) {
		if p != nil && p.Retryable == nil {
			p.Retryable = RetryableError
		}
		e.res = p
	}
}

// WithTenant sets the default QoS tenant stamped on every outgoing call
// whose context carries no explicit identity. An empty tenant leaves
// calls untagged (the server accounts them under qos.DefaultTenant).
func WithTenant(tenant string) Option {
	return func(e *Endpoint) { e.tenant = tenant }
}

// WithPressureHook installs a client-side observer of the server-push
// backpressure signal: after each reply, hook is invoked with the
// target's address and its current pressure level (0 = relaxed, 255 =
// saturated). The asyncengine uses it to shrink its ingest slots.
func WithPressureHook(hook func(target Address, level uint8)) Option {
	return func(e *Endpoint) {
		if hook != nil {
			e.pressureHook.Store(&hook)
		}
	}
}

// WithTracer attaches a span tracer to the endpoint. Every outgoing call
// records a client span carrying the caller's active span (from the
// context) as parent, and its span context travels in the RPC envelope;
// every served request records a server span parented by the incoming
// context — the linked two-sided view of each RPC.
func WithTracer(t *obs.Tracer) Option {
	return func(e *Endpoint) { e.tracer = t }
}

// Listen creates an endpoint on the given address. Supported schemes are
// "inproc" and "tcp". For "tcp", a port of 0 picks a free port; the actual
// address is available from Addr.
func Listen(addr Address, opts ...Option) (*Endpoint, error) {
	e := &Endpoint{
		handlers: make(map[string]Handler),
		dispatch: func(run func()) { go run() },
	}
	e.bulk.init()
	for _, o := range opts {
		o(e)
	}
	switch addr.Scheme() {
	case "inproc":
		t, actual, err := listenInproc(e, addr)
		if err != nil {
			return nil, err
		}
		e.trans, e.addr = t, actual
	case "tcp":
		t, actual, err := listenTCP(e, addr)
		if err != nil {
			return nil, err
		}
		e.trans, e.addr = t, actual
	default:
		return nil, fmt.Errorf("fabric: unsupported scheme in %q", addr)
	}
	e.registerBulkService()
	return e, nil
}

// Addr returns the endpoint's reachable address.
func (e *Endpoint) Addr() Address { return e.addr }

// Tracer returns the endpoint's span tracer (nil when tracing is off).
func (e *Endpoint) Tracer() *obs.Tracer { return e.tracer }

// Stats returns a snapshot of the endpoint's activity counters.
func (e *Endpoint) Stats() Stats { return e.stats.snapshot() }

// Register installs a handler for the named RPC. Registering twice replaces
// the handler, matching HG_Register semantics.
func (e *Endpoint) Register(rpc string, h Handler) {
	if h == nil {
		panic("fabric: nil handler for " + rpc)
	}
	e.mu.Lock()
	e.handlers[rpc] = h
	e.mu.Unlock()
}

// SetDispatcher replaces the handler dispatcher (used by Margo after the
// endpoint is created).
func (e *Endpoint) SetDispatcher(d Dispatcher) {
	if d == nil {
		panic("fabric: nil dispatcher")
	}
	e.mu.Lock()
	e.dispatch = d
	e.mu.Unlock()
}

// SetServeFault installs (or, with nil, removes) a server-side fault
// hook consulted before dispatching each incoming request. A non-nil
// error from the hook drops the request: the caller observes a
// transport-level failure (InjectedFault), never a RemoteError, because
// the handler was never run. Safe to call while the endpoint is serving
// — chaos scenarios install and heal hooks on live deployments.
func (e *Endpoint) SetServeFault(h FaultHook) {
	e.mu.Lock()
	e.serveFault = h
	e.mu.Unlock()
}

// SetPressureSource installs the server-side backpressure source; its
// level rides every reply envelope. Margo points it at the QoS gate.
func (e *Endpoint) SetPressureSource(src func() uint8) {
	if src != nil {
		e.pressureSrc.Store(&src)
	}
}

// SetPressureHook installs (or replaces) the client-side pressure
// observer after Listen — how core wires the asyncengine throttle to an
// endpoint margo already created.
func (e *Endpoint) SetPressureHook(hook func(target Address, level uint8)) {
	if hook != nil {
		e.pressureHook.Store(&hook)
	}
}

// pressure reads the server-side pressure source (0 when none is set).
func (e *Endpoint) pressure() uint8 {
	if p := e.pressureSrc.Load(); p != nil {
		return (*p)()
	}
	return 0
}

// Call sends an RPC to the target and waits for its response. With a
// resilience policy attached (WithResilience), transport-level failures
// are retried under that policy — each attempt is a fresh send paying
// the NetSim cost model again.
//
// The response is treated as GC-owned: the transport's receive buffer is
// never recycled, so the caller may retain the bytes freely. Hot paths
// that can bound the response's lifetime should use CallBorrow, which
// returns the buffer to the transport's pool.
func (e *Endpoint) Call(ctx context.Context, target Address, rpc string, payload []byte) ([]byte, error) {
	resp, _, err := e.CallBorrow(ctx, target, rpc, payload)
	return resp, err
}

// CallBorrow is Call with explicit response-buffer ownership: the returned
// response may be a borrowed view into a pooled transport buffer, and done
// (when non-nil) releases it. The contract (DESIGN.md §12):
//
//   - After calling done, the response and every view into it are dead.
//   - done may be called at most once; calling it is optional — skipping it
//     leaks nothing, the buffer just falls to the GC and the pool misses a
//     reuse. Callers that retain views of the response (borrowed decode)
//     must NOT call done.
//   - The request payload is never retained by the fabric: once CallBorrow
//     returns, the caller may recycle the payload's buffer.
func (e *Endpoint) CallBorrow(ctx context.Context, target Address, rpc string, payload []byte) ([]byte, func(), error) {
	if e.res == nil {
		return e.callOnce(ctx, target, rpc, payload)
	}
	var done func()
	resp, err := resilience.Do(ctx, e.res, string(target), func(ctx context.Context) ([]byte, error) {
		r, d, err := e.callOnce(ctx, target, rpc, payload)
		done = d
		return r, err
	})
	if err != nil {
		return nil, nil, err
	}
	return resp, done, nil
}

// callOnce is a single unretried send attempt. done is nil on error and on
// transports whose responses are GC-owned (inproc).
func (e *Endpoint) callOnce(ctx context.Context, target Address, rpc string, payload []byte) ([]byte, func(), error) {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, nil, ErrClosed
	}
	// Each attempt is its own client span: under a retrying policy the
	// trace shows every send, not just the one that succeeded. The span and
	// the breadcrumb profile open before the NetSim gate so a simulated
	// message loss is still a visible failed attempt.
	parent := obs.SpanFromContext(ctx)
	sp := e.tracer.Start(rpc, obs.KindClient, parent, string(target))
	envSC := sp.Context()
	if !envSC.Valid() {
		// No local tracer: still forward the caller's context so traces
		// survive an uninstrumented hop.
		envSC = parent
	}
	// The QoS identity travels next to the span context: an explicit
	// identity on the context wins; otherwise the endpoint's configured
	// tenant is stamped so every call from this client is attributable.
	ti := qos.IdentityFromContext(ctx)
	if ti.Tenant == "" {
		ti.Tenant = e.tenant
	}
	sp.SetTenant(ti.Tenant)
	start := time.Now()
	if e.sim != nil {
		if err := e.sim.beforeSend(ctx, target, rpc, len(payload), ti.Tenant); err != nil {
			// A NetSim fault is a simulated message loss: wrap it as an
			// InjectedFault so it classifies as (local) unavailable and the
			// class-driven retry rule re-sends it, whatever error value the
			// chaos scenario injected. Cancellation passes through — the
			// caller leaving is not a transport failure.
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				var inj *InjectedFault
				if !errors.As(err, &inj) {
					err = &InjectedFault{Err: err}
				}
			}
			e.stats.errors.Add(1)
			e.countErrClass(err)
			e.prof.record(rpc, time.Since(start), true)
			sp.End(err)
			return nil, nil, err
		}
	}
	e.stats.callsSent.Add(1)
	e.stats.bytesSent.Add(int64(len(payload)))
	resp, pressure, done, err := e.trans.call(ctx, target, rpc, payload, envSC, ti)
	e.prof.record(rpc, time.Since(start), err != nil)
	sp.End(err)
	if err != nil {
		e.stats.errors.Add(1)
		e.countErrClass(err)
		// A typed shed still carried the server's pressure level — the
		// strongest possible back-off signal reaches the hook below.
		if !qos.IsShed(err) {
			return nil, nil, err
		}
	}
	if hook := e.pressureHook.Load(); hook != nil {
		(*hook)(target, pressure)
	}
	if err != nil {
		return nil, nil, err
	}
	e.stats.bytesReceived.Add(int64(len(resp)))
	return resp, done, nil
}

// countErrClass bumps the per-class error counter for err.
func (e *Endpoint) countErrClass(err error) {
	cls := string(xerr.ClassOf(err))
	if cls == "" {
		cls = string(xerr.ClassInternal)
	}
	if c, ok := e.errClasses.Load(cls); ok {
		c.(*atomic.Int64).Add(1)
		return
	}
	c, _ := e.errClasses.LoadOrStore(cls, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

// ErrorClasses snapshots the endpoint's per-class error counts.
func (e *Endpoint) ErrorClasses() map[string]int64 {
	out := make(map[string]int64)
	e.errClasses.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Close shuts the endpoint down. In-flight calls may fail with ErrClosed.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	return e.trans.close()
}

// serve runs the handler for an incoming request and returns the response
// payload or an error to be sent back, plus the endpoint's current
// backpressure level for the reply envelope. It is invoked by transports;
// sc is the caller's span context from the envelope (zero when the caller
// did not trace), ti the caller's QoS identity (zero for pre-QoS frames).
func (e *Endpoint) serve(ctx context.Context, from Address, rpc string, payload []byte, sc obs.SpanContext, ti qos.Identity) ([]byte, uint8, error) {
	e.mu.RLock()
	h, ok := e.handlers[rpc]
	closed := e.closed
	dispatch := e.dispatch
	fault := e.serveFault
	e.mu.RUnlock()
	if closed {
		return nil, 0, ErrClosed
	}
	if fault != nil {
		if err := fault(from, rpc, len(payload), ti.Tenant); err != nil {
			e.stats.errors.Add(1)
			inj := &InjectedFault{Err: err}
			e.countErrClass(inj)
			return nil, e.pressure(), inj
		}
	}
	if !ok {
		err := fmt.Errorf("%w: %q at %s", ErrNoSuchRPC, rpc, e.addr)
		e.countErrClass(err)
		return nil, e.pressure(), err
	}
	e.stats.callsServed.Add(1)

	// The server span opens before dispatch, so it measures queue wait
	// plus execution — the difference against the handler's own internal
	// span (opened after the pool picks the work up) is pure queue wait.
	srv := e.tracer.Start(rpc, obs.KindServer, sc, string(from))
	srv.SetTenant(ti.Tenant)
	active := srv.Context()
	if !active.Valid() {
		active = sc // untraced hop: keep forwarding the caller's context
	}
	hctx := obs.ContextWithSpan(ctx, active)
	if ti.Tenant != "" || ti.Class != qos.ClassUnknown {
		// The identity flows into the handler context, so downstream calls
		// the handler makes (replication, resync) stay attributed.
		hctx = qos.ContextWithIdentity(hctx, ti)
	}

	type result struct {
		resp []byte
		err  error
	}
	done := make(chan result, 1)
	dispatch(func() {
		resp, err := h(hctx, &Request{RPC: rpc, Payload: payload, From: from, Identity: ti, ep: e})
		done <- result{resp, err}
	})
	select {
	case r := <-done:
		srv.End(r.err)
		if r.err != nil {
			e.countErrClass(r.err)
		}
		return r.resp, e.pressure(), r.err
	case <-ctx.Done():
		srv.End(ctx.Err())
		e.countErrClass(ctx.Err())
		return nil, e.pressure(), ctx.Err()
	}
}

// transport is the wire-level half of an endpoint. sc and ti travel in
// the request envelope so the target can link its server span to the
// caller and attribute the request to a tenant; pressure comes back in
// the reply envelope (0 when the server runs no gate).
//
// call must not retain payload after returning. The returned response may
// be a borrowed view into a transport-owned buffer; done (which may be
// nil) releases that buffer back to the transport's pool, after which the
// response bytes are dead. done is nil whenever the response is plain
// GC-owned memory.
type transport interface {
	call(ctx context.Context, target Address, rpc string, payload []byte, sc obs.SpanContext, ti qos.Identity) (resp []byte, pressure uint8, done func(), err error)
	close() error
}
