package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
)

// inprocRegistry maps inproc addresses to live endpoints within the
// process, playing the role Mercury's shared-memory NA plugin plays between
// co-located processes.
var inprocRegistry = struct {
	sync.RWMutex
	eps map[Address]*Endpoint
}{eps: make(map[Address]*Endpoint)}

type inprocTransport struct {
	self *Endpoint
	addr Address
}

func listenInproc(e *Endpoint, addr Address) (transport, Address, error) {
	name := string(addr)
	if name == "inproc://" || addr.Scheme() != "inproc" {
		return nil, "", fmt.Errorf("fabric: bad inproc address %q", addr)
	}
	inprocRegistry.Lock()
	defer inprocRegistry.Unlock()
	if _, exists := inprocRegistry.eps[addr]; exists {
		return nil, "", fmt.Errorf("fabric: inproc address %q already in use", addr)
	}
	inprocRegistry.eps[addr] = e
	return &inprocTransport{self: e, addr: addr}, addr, nil
}

func (t *inprocTransport) call(ctx context.Context, target Address, rpc string, payload []byte, sc obs.SpanContext, ti qos.Identity) ([]byte, uint8, func(), error) {
	inprocRegistry.RLock()
	dst, ok := inprocRegistry.eps[target]
	inprocRegistry.RUnlock()
	if !ok {
		return nil, 0, nil, fmt.Errorf("%w: %s", ErrUnreachable, target)
	}
	// Copy the payload so caller and handler never alias memory, the same
	// isolation a real wire provides. This copy is load-bearing: serve can
	// return early on ctx cancellation while the dispatched handler is
	// still reading the payload, so the caller must stay free to recycle
	// its own buffer the moment call returns.
	var in []byte
	if payload != nil {
		in = append([]byte(nil), payload...)
	}
	resp, pressure, err := dst.serve(ctx, t.addr, rpc, in, sc, ti)
	if err != nil {
		// Injected server-side faults are message losses: they cross as
		// transport failures, since the handler never executed.
		var inj *InjectedFault
		if errors.As(err, &inj) {
			return nil, pressure, nil, err
		}
		// Typed sheds cross typed — on a real wire they travel as their
		// own status code, and callers must see *qos.ShedError, never a
		// timeout or a generic remote failure.
		var shed *qos.ShedError
		if errors.As(err, &shed) {
			return nil, pressure, nil, shed
		}
		// The caller's own cancellation is not a remote answer; it passes
		// through untouched.
		if ctx.Err() != nil {
			return nil, pressure, nil, err
		}
		// Classified errors cross as remote-marked typed errors — the
		// inproc analog of the tcp transport's statusTyped frame. Class,
		// sentinel identity and unwrap chain survive; the remote mark
		// records that a handler answered.
		if xerr.Wireable(err) {
			return nil, pressure, nil, xerr.AsRemote(err)
		}
		// Unclassified application errors cross the "wire" as RemoteError,
		// like a serialized Mercury response with an error code.
		if _, isRemote := err.(*RemoteError); !isRemote {
			err = &RemoteError{RPC: rpc, Msg: err.Error()}
		}
		return nil, pressure, nil, err
	}
	// The response crosses without a copy: handlers build fresh GC-owned
	// responses and never touch them after returning (on the early-return
	// race the abandoned response is simply dropped), so aliasing is safe.
	// done is nil — there is no pooled receive buffer to give back.
	return resp, pressure, nil, nil
}

func (t *inprocTransport) close() error {
	inprocRegistry.Lock()
	delete(inprocRegistry.eps, t.addr)
	inprocRegistry.Unlock()
	return nil
}
