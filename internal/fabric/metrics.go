package fabric

import (
	"sort"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

// RegisterMetrics exposes the endpoint's breadcrumb profiles and byte
// counters as instruments in reg. Collectors snapshot the live profiler
// at scrape time; nothing is added to the call hot path.
func (e *Endpoint) RegisterMetrics(reg *obs.Registry) {
	perRPC := func(value func(RPCProfile) float64) obs.Collector {
		return func() []obs.Sample {
			profs := e.Profile()
			out := make([]obs.Sample, 0, len(profs))
			for _, p := range profs {
				out = append(out, obs.OneSample(value(p), "rpc", p.RPC))
			}
			return out
		}
	}
	reg.MustRegister(obs.MetricRPCCalls,
		"Successful origin-side RPC calls by name.", obs.TypeCounter,
		perRPC(func(p RPCProfile) float64 { return float64(p.Calls) }))
	reg.MustRegister(obs.MetricRPCErrors,
		"Failed origin-side RPC calls by name.", obs.TypeCounter,
		perRPC(func(p RPCProfile) float64 { return float64(p.Errors) }))
	reg.MustRegister(obs.MetricRPCSeconds,
		"Cumulative origin-side round-trip time by RPC name.", obs.TypeCounter,
		perRPC(func(p RPCProfile) float64 { return p.Total.Seconds() }))

	reg.MustRegister("hepnos_fabric_bytes_sent_total",
		"Request payload bytes sent by this endpoint.", obs.TypeCounter,
		func() []obs.Sample { return obs.GaugeSample(float64(e.Stats().BytesSent)) })
	reg.MustRegister("hepnos_fabric_bytes_received_total",
		"Response payload bytes received by this endpoint.", obs.TypeCounter,
		func() []obs.Sample { return obs.GaugeSample(float64(e.Stats().BytesReceived)) })
	reg.MustRegister("hepnos_fabric_bulk_pulls_total",
		"Bulk transfers pulled by this endpoint.", obs.TypeCounter,
		func() []obs.Sample { return obs.GaugeSample(float64(e.Stats().BulkPulls)) })
	reg.MustRegister("hepnos_fabric_calls_served_total",
		"Requests dispatched to handlers by this endpoint.", obs.TypeCounter,
		func() []obs.Sample { return obs.GaugeSample(float64(e.Stats().CallsServed)) })

	reg.MustRegister(obs.MetricErrors,
		"Errors observed by this endpoint (calls sent and requests served), by xerr class.",
		obs.TypeCounter,
		func() []obs.Sample {
			classes := e.ErrorClasses()
			names := make([]string, 0, len(classes))
			for cls := range classes {
				names = append(names, cls)
			}
			sort.Strings(names) // deterministic snapshots
			out := make([]obs.Sample, 0, len(names))
			for _, cls := range names {
				out = append(out, obs.OneSample(float64(classes[cls]), "class", cls))
			}
			return out
		})
}
