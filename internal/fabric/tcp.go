package fabric

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/wire"
)

// Wire format (all integers little-endian):
//
//	frame   = u32 length, body
//	request = 'Q', u64 reqID, u16 rpcLen, rpc, u16 fromLen, from,
//	          u64 trace, u64 span, payload
//	reply   = 'R', u64 reqID, u8 status, payload-or-error-message
//
// trace/span carry the caller's span context (zero when untraced), the
// 16-byte envelope cost of cross-tier trace linkage.
//
// status 0 is success; 1 is an application error whose message follows;
// 2 is an injected server-side fault (chaos testing) that the caller
// must treat as a transport-level loss, not an application error.
const (
	frameRequest = 'Q'
	frameReply   = 'R'

	statusOK    = 0
	statusErr   = 1
	statusFault = 2

	maxFrame = 1 << 30 // sanity cap: 1 GiB per message
)

type tcpTransport struct {
	self *Endpoint
	ln   net.Listener
	addr Address

	mu    sync.Mutex
	conns map[Address]*tcpConn // outgoing connection pool
	done  chan struct{}
	wg    sync.WaitGroup
}

func listenTCP(e *Endpoint, addr Address) (transport, Address, error) {
	hostport := strings.TrimPrefix(string(addr), "tcp://")
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, "", fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	t := &tcpTransport{
		self:  e,
		ln:    ln,
		addr:  Address("tcp://" + ln.Addr().String()),
		conns: make(map[Address]*tcpConn),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, t.addr, nil
}

func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(c)
		}()
	}
}

// serveConn handles inbound frames from one peer connection. Requests are
// dispatched concurrently; replies are matched to pending outgoing calls
// (the same connection carries both directions, so bulk pulls from a server
// back to a client reuse the client's dialed connection).
func (t *tcpTransport) serveConn(nc net.Conn) {
	c := &tcpConn{nc: nc, pending: make(map[uint64]chan tcpReply)}
	t.connLoop(c)
}

func (t *tcpTransport) connLoop(c *tcpConn) {
	defer c.nc.Close()
	for {
		buf, err := readFrame(c.nc)
		if err != nil {
			c.failAll(err)
			return
		}
		body := buf.B
		if len(body) == 0 {
			buf.Release()
			c.failAll(fmt.Errorf("fabric: empty frame"))
			return
		}
		switch body[0] {
		case frameRequest:
			// The payload is a borrowed view into the pooled frame buffer —
			// no clone. The goroutine owns the frame: serve (and therefore
			// the handler) completes before the reply is written, after
			// which the frame is recycled. serve is given a background
			// context precisely so it cannot return while the handler is
			// still reading the borrowed payload.
			reqID, rpc, from, sc, payload, err := parseRequest(body)
			if err != nil {
				buf.Release()
				c.failAll(err)
				return
			}
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				defer buf.Release()
				resp, herr := t.self.serve(context.Background(), from, rpc, payload, sc)
				if herr != nil {
					status := byte(statusErr)
					var inj *InjectedFault
					if errors.As(herr, &inj) {
						status = statusFault
					}
					c.writeFrame(frameReply, reqID, status, []byte(herr.Error()))
				} else {
					c.writeFrame(frameReply, reqID, statusOK, resp)
				}
			}()
		case frameReply:
			if len(body) < 10 {
				buf.Release()
				c.failAll(fmt.Errorf("fabric: short reply frame"))
				return
			}
			reqID := binary.LittleEndian.Uint64(body[1:9])
			status := body[9]
			// Ownership of the frame transfers to the waiting caller: the
			// payload is a borrowed view and done recycles the buffer. If
			// no caller is waiting (canceled), deliver releases it.
			c.deliver(reqID, tcpReply{status: status, payload: body[10:], done: buf.Release})
		default:
			buf.Release()
			c.failAll(fmt.Errorf("fabric: unknown frame kind %q", body[0]))
			return
		}
	}
}

func (t *tcpTransport) call(ctx context.Context, target Address, rpc string, payload []byte, sc obs.SpanContext) ([]byte, func(), error) {
	c, err := t.getConn(target)
	if err != nil {
		return nil, nil, err
	}
	reqID, ch := c.newPending()
	if err := c.writeRequest(reqID, rpc, t.addr, sc, payload); err != nil {
		c.cancelPending(reqID)
		t.dropConn(target, c)
		return nil, nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, target, err)
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s: connection lost", ErrUnreachable, target)
		}
		if r.status == statusFault {
			err := &InjectedFault{Err: fmt.Errorf("%w: %s dropped %s: %s", ErrUnreachable, target, rpc, r.payload)}
			r.release()
			return nil, nil, err
		}
		if r.status == statusErr {
			err := &RemoteError{RPC: rpc, Msg: string(r.payload)}
			r.release()
			return nil, nil, err
		}
		return r.payload, r.done, nil
	case <-ctx.Done():
		c.cancelPending(reqID)
		return nil, nil, ctx.Err()
	}
}

func (t *tcpTransport) getConn(target Address) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[target]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	hostport := strings.TrimPrefix(string(target), "tcp://")
	nc, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, target, err)
	}
	c := &tcpConn{nc: nc, pending: make(map[uint64]chan tcpReply)}

	t.mu.Lock()
	if existing, ok := t.conns[target]; ok {
		t.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	t.conns[target] = c
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.connLoop(c)
		t.dropConn(target, c)
	}()
	return c, nil
}

func (t *tcpTransport) dropConn(target Address, c *tcpConn) {
	t.mu.Lock()
	if t.conns[target] == c {
		delete(t.conns, target)
	}
	t.mu.Unlock()
	c.failAll(fmt.Errorf("connection dropped"))
	c.nc.Close()
}

func (t *tcpTransport) close() error {
	close(t.done)
	err := t.ln.Close()
	t.mu.Lock()
	for a, c := range t.conns {
		c.nc.Close()
		delete(t.conns, a)
	}
	t.mu.Unlock()
	// Do not wait for handler goroutines: a handler may be blocked on a
	// call to another endpoint that is also closing.
	return err
}

type tcpReply struct {
	status  byte
	payload []byte // borrowed view into a pooled frame buffer
	done    func() // recycles the frame; nil-safe via release
}

func (r tcpReply) release() {
	if r.done != nil {
		r.done()
	}
}

// tcpConn wraps one socket with request/reply correlation state.
type tcpConn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	nextID  uint64
	pending map[uint64]chan tcpReply
	dead    bool
}

func (c *tcpConn) newPending() (uint64, chan tcpReply) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	c.nextID++
	ch := make(chan tcpReply, 1)
	c.pending[c.nextID] = ch
	return c.nextID, ch
}

func (c *tcpConn) cancelPending(id uint64) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

func (c *tcpConn) deliver(id uint64, r tcpReply) {
	c.pmu.Lock()
	ch, ok := c.pending[id]
	delete(c.pending, id)
	c.pmu.Unlock()
	if ok {
		ch <- r
	} else {
		// The caller gave up (canceled): nobody will ever read this reply,
		// so the frame goes straight back to the pool.
		r.release()
	}
}

// failAll closes every pending reply channel; waiting callers observe a
// lost connection.
func (c *tcpConn) failAll(error) {
	c.pmu.Lock()
	if c.dead {
		c.pmu.Unlock()
		return
	}
	c.dead = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.pmu.Unlock()
}

// writeRequest sends a request frame scatter-gather style: the header is
// built in a small pooled buffer and the payload is handed to the kernel as
// a second iovec (net.Buffers → writev), so the payload bytes are never
// copied into an intermediate frame allocation.
func (c *tcpConn) writeRequest(reqID uint64, rpc string, from Address, sc obs.SpanContext, payload []byte) error {
	hdr := wire.Acquire(4 + 1 + 8 + 2 + len(rpc) + 2 + len(from) + 16)
	defer hdr.Release()
	body := 1 + 8 + 2 + len(rpc) + 2 + len(from) + 16 + len(payload)
	b := hdr.B[:4+body-len(payload)]
	binary.LittleEndian.PutUint32(b[0:], uint32(body))
	b[4] = frameRequest
	binary.LittleEndian.PutUint64(b[5:], reqID)
	binary.LittleEndian.PutUint16(b[13:], uint16(len(rpc)))
	copy(b[15:], rpc)
	off := 15 + len(rpc)
	binary.LittleEndian.PutUint16(b[off:], uint16(len(from)))
	copy(b[off+2:], from)
	off += 2 + len(from)
	binary.LittleEndian.PutUint64(b[off:], sc.Trace)
	binary.LittleEndian.PutUint64(b[off+8:], sc.Span)
	hdr.B = b
	return c.writev(b, payload)
}

// writeFrame sends a reply frame, likewise header-pooled + writev.
func (c *tcpConn) writeFrame(kind byte, reqID uint64, status byte, payload []byte) error {
	hdr := wire.Acquire(4 + 1 + 8 + 1)
	defer hdr.Release()
	body := 1 + 8 + 1 + len(payload)
	b := hdr.B[:14]
	binary.LittleEndian.PutUint32(b[0:], uint32(body))
	b[4] = kind
	binary.LittleEndian.PutUint64(b[5:], reqID)
	b[13] = status
	hdr.B = b
	return c.writev(b, payload)
}

// writev writes header and payload as one atomic frame under the write
// lock, using vectored I/O so neither part is re-copied.
func (c *tcpConn) writev(hdr, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if len(payload) == 0 {
		_, err := c.nc.Write(hdr)
		return err
	}
	bufs := net.Buffers{hdr, payload}
	_, err := bufs.WriteTo(c.nc)
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller owns the returned Buf and must Release it when the frame (and
// every borrowed view into it) is dead.
func readFrame(r io.Reader) (*wire.Buf, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit", n)
	}
	buf := wire.Acquire(int(n))
	body := buf.B[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		buf.Release()
		return nil, err
	}
	buf.B = body
	return buf, nil
}

func parseRequest(body []byte) (reqID uint64, rpc string, from Address, sc obs.SpanContext, payload []byte, err error) {
	fail := func(msg string) (uint64, string, Address, obs.SpanContext, []byte, error) {
		return 0, "", "", obs.SpanContext{}, nil, errors.New("fabric: " + msg)
	}
	if len(body) < 11 {
		return fail("short request frame")
	}
	reqID = binary.LittleEndian.Uint64(body[1:9])
	rpcLen := int(binary.LittleEndian.Uint16(body[9:11]))
	if len(body) < 11+rpcLen+2 {
		return fail("truncated rpc name")
	}
	rpc = string(body[11 : 11+rpcLen])
	off := 11 + rpcLen
	fromLen := int(binary.LittleEndian.Uint16(body[off : off+2]))
	if len(body) < off+2+fromLen+16 {
		return fail("truncated from address or span context")
	}
	from = Address(body[off+2 : off+2+fromLen])
	off += 2 + fromLen
	sc.Trace = binary.LittleEndian.Uint64(body[off : off+8])
	sc.Span = binary.LittleEndian.Uint64(body[off+8 : off+16])
	// The payload is a borrowed view into the frame body, not a clone; the
	// frame's owner keeps it alive until the handler has replied.
	payload = body[off+16:]
	return reqID, rpc, from, sc, payload, nil
}
