package fabric

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/wire"
	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
)

// Wire format (all integers little-endian):
//
//	frame   = u32 length, body
//	request = 'Q', u64 reqID, u16 rpcLen, rpc, u16 fromLen, from,
//	          u64 trace, u64 span, payload                      (legacy)
//	        | 'T', u64 reqID, u16 rpcLen, rpc, u16 fromLen, from,
//	          u64 trace, u64 span, u8 class, u16 tenantLen, tenant,
//	          payload                                            (QoS)
//	reply   = 'R', u64 reqID, u8 status, payload                 (legacy)
//	        | 'S', u64 reqID, u8 status, u8 pressure, payload    (QoS)
//
// trace/span carry the caller's span context (zero when untraced);
// class/tenant carry the caller's QoS identity, and pressure carries the
// server's backpressure level (0 relaxed .. 255 saturated) back on every
// reply. Current endpoints always emit 'T'/'S'; 'Q'/'R' stay parseable so
// pre-QoS peers interoperate (zero identity, zero pressure).
//
// status 0 is success; 1 is an application error whose message follows
// as a flat string (the legacy path, kept for handlers whose errors carry
// no classification); 2 is an injected server-side fault (chaos testing)
// that the caller must treat as a transport-level loss, not an
// application error; 3 is a typed QoS shed whose payload is the encoded
// qos.ShedError; 4 is a typed error whose payload is an xerr wire frame —
// class, sentinel code, message and fields — so a server-side not_found
// arrives at the client as the same typed error it left as.
const (
	frameRequest    = 'Q'
	frameReply      = 'R'
	frameRequestQoS = 'T'
	frameReplyQoS   = 'S'

	statusOK    = 0
	statusErr   = 1
	statusFault = 2
	statusShed  = 3
	statusTyped = 4

	maxFrame = 1 << 30 // sanity cap: 1 GiB per message
)

type tcpTransport struct {
	self *Endpoint
	ln   net.Listener
	addr Address

	mu    sync.Mutex
	conns map[Address]*tcpConn // outgoing connection pool
	done  chan struct{}
	wg    sync.WaitGroup
}

func listenTCP(e *Endpoint, addr Address) (transport, Address, error) {
	hostport := strings.TrimPrefix(string(addr), "tcp://")
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, "", fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	t := &tcpTransport{
		self:  e,
		ln:    ln,
		addr:  Address("tcp://" + ln.Addr().String()),
		conns: make(map[Address]*tcpConn),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, t.addr, nil
}

func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(c)
		}()
	}
}

// serveConn handles inbound frames from one peer connection. Requests are
// dispatched concurrently; replies are matched to pending outgoing calls
// (the same connection carries both directions, so bulk pulls from a server
// back to a client reuse the client's dialed connection).
func (t *tcpTransport) serveConn(nc net.Conn) {
	c := &tcpConn{nc: nc, pending: make(map[uint64]chan tcpReply)}
	t.connLoop(c)
}

func (t *tcpTransport) connLoop(c *tcpConn) {
	defer c.nc.Close()
	for {
		buf, err := readFrame(c.nc)
		if err != nil {
			c.failAll(err)
			return
		}
		body := buf.B
		if len(body) == 0 {
			buf.Release()
			c.failAll(fmt.Errorf("fabric: empty frame"))
			return
		}
		switch body[0] {
		case frameRequest, frameRequestQoS:
			// The payload is a borrowed view into the pooled frame buffer —
			// no clone. The goroutine owns the frame: serve (and therefore
			// the handler) completes before the reply is written, after
			// which the frame is recycled. serve is given a background
			// context precisely so it cannot return while the handler is
			// still reading the borrowed payload.
			reqID, rpc, from, sc, ti, payload, err := parseRequest(body)
			if err != nil {
				buf.Release()
				c.failAll(err)
				return
			}
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				defer buf.Release()
				resp, pressure, herr := t.self.serve(context.Background(), from, rpc, payload, sc, ti)
				if herr != nil {
					status := byte(statusErr)
					msg := []byte(herr.Error())
					var inj *InjectedFault
					var shed *qos.ShedError
					switch {
					case errors.As(herr, &inj):
						status = statusFault
					case errors.As(herr, &shed):
						status = statusShed
						msg = shed.AppendWire(msg[:0])
					case xerr.Wireable(herr):
						// Classified errors cross typed: the client decodes
						// the same class/sentinel identity instead of a
						// string-laundered RemoteError.
						status = statusTyped
						msg = xerr.AppendWire(msg[:0], herr)
					}
					c.writeReply(reqID, status, pressure, msg)
				} else {
					c.writeReply(reqID, statusOK, pressure, resp)
				}
			}()
		case frameReply, frameReplyQoS:
			reqID, status, pressure, payload, perr := parseReply(body)
			if perr != nil {
				buf.Release()
				c.failAll(perr)
				return
			}
			// Ownership of the frame transfers to the waiting caller: the
			// payload is a borrowed view and done recycles the buffer. If
			// no caller is waiting (canceled), deliver releases it.
			c.deliver(reqID, tcpReply{status: status, pressure: pressure, payload: payload, done: buf.Release})
		default:
			buf.Release()
			c.failAll(fmt.Errorf("fabric: unknown frame kind %q", body[0]))
			return
		}
	}
}

func (t *tcpTransport) call(ctx context.Context, target Address, rpc string, payload []byte, sc obs.SpanContext, ti qos.Identity) ([]byte, uint8, func(), error) {
	c, err := t.getConn(target)
	if err != nil {
		return nil, 0, nil, err
	}
	reqID, ch := c.newPending()
	if err := c.writeRequest(reqID, rpc, t.addr, sc, ti, payload); err != nil {
		c.cancelPending(reqID)
		t.dropConn(target, c)
		return nil, 0, nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, target, err)
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return nil, 0, nil, fmt.Errorf("%w: %s: connection lost", ErrUnreachable, target)
		}
		if r.status == statusFault {
			err := &InjectedFault{Err: fmt.Errorf("%w: %s dropped %s: %s", ErrUnreachable, target, rpc, r.payload)}
			r.release()
			return nil, r.pressure, nil, err
		}
		if r.status == statusShed {
			shed := qos.ParseShedWire(r.payload)
			r.release()
			return nil, r.pressure, nil, shed
		}
		if r.status == statusTyped {
			// ParseWire copies everything it needs out of the payload, so
			// the frame can be recycled before the error escapes.
			err := xerr.ParseWire(r.payload)
			r.release()
			return nil, r.pressure, nil, err
		}
		if r.status == statusErr {
			err := &RemoteError{RPC: rpc, Msg: string(r.payload)}
			r.release()
			return nil, r.pressure, nil, err
		}
		return r.payload, r.pressure, r.done, nil
	case <-ctx.Done():
		c.cancelPending(reqID)
		return nil, 0, nil, ctx.Err()
	}
}

func (t *tcpTransport) getConn(target Address) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[target]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	hostport := strings.TrimPrefix(string(target), "tcp://")
	nc, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, target, err)
	}
	c := &tcpConn{nc: nc, pending: make(map[uint64]chan tcpReply)}

	t.mu.Lock()
	if existing, ok := t.conns[target]; ok {
		t.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	t.conns[target] = c
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.connLoop(c)
		t.dropConn(target, c)
	}()
	return c, nil
}

func (t *tcpTransport) dropConn(target Address, c *tcpConn) {
	t.mu.Lock()
	if t.conns[target] == c {
		delete(t.conns, target)
	}
	t.mu.Unlock()
	c.failAll(fmt.Errorf("connection dropped"))
	c.nc.Close()
}

func (t *tcpTransport) close() error {
	close(t.done)
	err := t.ln.Close()
	t.mu.Lock()
	for a, c := range t.conns {
		c.nc.Close()
		delete(t.conns, a)
	}
	t.mu.Unlock()
	// Do not wait for handler goroutines: a handler may be blocked on a
	// call to another endpoint that is also closing.
	return err
}

type tcpReply struct {
	status   byte
	pressure byte   // server-push backpressure from the 'S' envelope
	payload  []byte // borrowed view into a pooled frame buffer
	done     func() // recycles the frame; nil-safe via release
}

func (r tcpReply) release() {
	if r.done != nil {
		r.done()
	}
}

// tcpConn wraps one socket with request/reply correlation state.
type tcpConn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	nextID  uint64
	pending map[uint64]chan tcpReply
	dead    bool
}

func (c *tcpConn) newPending() (uint64, chan tcpReply) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	c.nextID++
	ch := make(chan tcpReply, 1)
	c.pending[c.nextID] = ch
	return c.nextID, ch
}

func (c *tcpConn) cancelPending(id uint64) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

func (c *tcpConn) deliver(id uint64, r tcpReply) {
	c.pmu.Lock()
	ch, ok := c.pending[id]
	delete(c.pending, id)
	c.pmu.Unlock()
	if ok {
		ch <- r
	} else {
		// The caller gave up (canceled): nobody will ever read this reply,
		// so the frame goes straight back to the pool.
		r.release()
	}
}

// failAll closes every pending reply channel; waiting callers observe a
// lost connection.
func (c *tcpConn) failAll(error) {
	c.pmu.Lock()
	if c.dead {
		c.pmu.Unlock()
		return
	}
	c.dead = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.pmu.Unlock()
}

// appendRequestHeader appends the 'T' request body header — everything
// before the payload — to b. Pure (no I/O, no pooling), so the fuzz suite
// round-trips it directly against parseRequest.
func appendRequestHeader(b []byte, reqID uint64, rpc string, from Address, sc obs.SpanContext, ti qos.Identity) []byte {
	var u8 [8]byte
	b = append(b, frameRequestQoS)
	binary.LittleEndian.PutUint64(u8[:], reqID)
	b = append(b, u8[:]...)
	binary.LittleEndian.PutUint16(u8[:2], uint16(len(rpc)))
	b = append(b, u8[:2]...)
	b = append(b, rpc...)
	binary.LittleEndian.PutUint16(u8[:2], uint16(len(from)))
	b = append(b, u8[:2]...)
	b = append(b, from...)
	binary.LittleEndian.PutUint64(u8[:], sc.Trace)
	b = append(b, u8[:]...)
	binary.LittleEndian.PutUint64(u8[:], sc.Span)
	b = append(b, u8[:]...)
	b = append(b, byte(ti.Class))
	binary.LittleEndian.PutUint16(u8[:2], uint16(len(ti.Tenant)))
	b = append(b, u8[:2]...)
	b = append(b, ti.Tenant...)
	return b
}

// requestHeaderLen is the byte length appendRequestHeader will produce.
func requestHeaderLen(rpc string, from Address, ti qos.Identity) int {
	return 1 + 8 + 2 + len(rpc) + 2 + len(from) + 16 + 1 + 2 + len(ti.Tenant)
}

// writeRequest sends a request frame scatter-gather style: the header is
// built in a small pooled buffer and the payload is handed to the kernel as
// a second iovec (net.Buffers → writev), so the payload bytes are never
// copied into an intermediate frame allocation.
func (c *tcpConn) writeRequest(reqID uint64, rpc string, from Address, sc obs.SpanContext, ti qos.Identity, payload []byte) error {
	hdrLen := requestHeaderLen(rpc, from, ti)
	hdr := wire.Acquire(4 + hdrLen)
	defer hdr.Release()
	b := hdr.B[:4]
	binary.LittleEndian.PutUint32(b, uint32(hdrLen+len(payload)))
	b = appendRequestHeader(b, reqID, rpc, from, sc, ti)
	hdr.B = b
	return c.writev(b, payload)
}

// writeReply sends an 'S' reply frame — status plus the server's pushed
// pressure level — likewise header-pooled + writev.
func (c *tcpConn) writeReply(reqID uint64, status, pressure byte, payload []byte) error {
	hdr := wire.Acquire(4 + 1 + 8 + 1 + 1)
	defer hdr.Release()
	body := 1 + 8 + 1 + 1 + len(payload)
	b := hdr.B[:15]
	binary.LittleEndian.PutUint32(b[0:], uint32(body))
	b[4] = frameReplyQoS
	binary.LittleEndian.PutUint64(b[5:], reqID)
	b[13] = status
	b[14] = pressure
	hdr.B = b
	return c.writev(b, payload)
}

// writev writes header and payload as one atomic frame under the write
// lock, using vectored I/O so neither part is re-copied.
func (c *tcpConn) writev(hdr, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if len(payload) == 0 {
		_, err := c.nc.Write(hdr)
		return err
	}
	bufs := net.Buffers{hdr, payload}
	_, err := bufs.WriteTo(c.nc)
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller owns the returned Buf and must Release it when the frame (and
// every borrowed view into it) is dead.
func readFrame(r io.Reader) (*wire.Buf, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit", n)
	}
	buf := wire.Acquire(int(n))
	body := buf.B[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		buf.Release()
		return nil, err
	}
	buf.B = body
	return buf, nil
}

// parseReply decodes a reply frame body — legacy 'R' (no pressure byte)
// or QoS 'S'. Pure (no I/O, no pooling), so the golden/fuzz suite pins
// both formats directly; the returned payload is a view into body.
func parseReply(body []byte) (reqID uint64, status, pressure byte, payload []byte, err error) {
	fail := func(msg string) (uint64, byte, byte, []byte, error) {
		return 0, 0, 0, nil, errors.New("fabric: " + msg)
	}
	if len(body) == 0 {
		return fail("empty reply frame")
	}
	switch body[0] {
	case frameReply:
		if len(body) < 10 {
			return fail("short reply frame")
		}
		return binary.LittleEndian.Uint64(body[1:9]), body[9], 0, body[10:], nil
	case frameReplyQoS:
		if len(body) < 11 {
			return fail("short reply frame")
		}
		return binary.LittleEndian.Uint64(body[1:9]), body[9], body[10], body[11:], nil
	default:
		return fail("not a reply frame")
	}
}

func parseRequest(body []byte) (reqID uint64, rpc string, from Address, sc obs.SpanContext, ti qos.Identity, payload []byte, err error) {
	fail := func(msg string) (uint64, string, Address, obs.SpanContext, qos.Identity, []byte, error) {
		return 0, "", "", obs.SpanContext{}, qos.Identity{}, nil, errors.New("fabric: " + msg)
	}
	if len(body) < 11 {
		return fail("short request frame")
	}
	kind := body[0]
	if kind != frameRequest && kind != frameRequestQoS {
		return fail("not a request frame")
	}
	reqID = binary.LittleEndian.Uint64(body[1:9])
	rpcLen := int(binary.LittleEndian.Uint16(body[9:11]))
	if len(body) < 11+rpcLen+2 {
		return fail("truncated rpc name")
	}
	rpc = string(body[11 : 11+rpcLen])
	off := 11 + rpcLen
	fromLen := int(binary.LittleEndian.Uint16(body[off : off+2]))
	if len(body) < off+2+fromLen+16 {
		return fail("truncated from address or span context")
	}
	from = Address(body[off+2 : off+2+fromLen])
	off += 2 + fromLen
	sc.Trace = binary.LittleEndian.Uint64(body[off : off+8])
	sc.Span = binary.LittleEndian.Uint64(body[off+8 : off+16])
	off += 16
	if kind == frameRequestQoS {
		// The QoS identity sits between the span context and the payload;
		// legacy 'Q' frames simply lack it (zero identity).
		if len(body) < off+3 {
			return fail("truncated qos identity")
		}
		ti.Class = qos.Class(body[off])
		tenantLen := int(binary.LittleEndian.Uint16(body[off+1 : off+3]))
		if len(body) < off+3+tenantLen {
			return fail("truncated tenant name")
		}
		ti.Tenant = string(body[off+3 : off+3+tenantLen])
		off += 3 + tenantLen
	}
	// The payload is a borrowed view into the frame body, not a clone; the
	// frame's owner keeps it alive until the handler has replied.
	payload = body[off:]
	return reqID, rpc, from, sc, ti, payload, nil
}
