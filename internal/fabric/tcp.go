package fabric

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

// Wire format (all integers little-endian):
//
//	frame   = u32 length, body
//	request = 'Q', u64 reqID, u16 rpcLen, rpc, u16 fromLen, from,
//	          u64 trace, u64 span, payload
//	reply   = 'R', u64 reqID, u8 status, payload-or-error-message
//
// trace/span carry the caller's span context (zero when untraced), the
// 16-byte envelope cost of cross-tier trace linkage.
//
// status 0 is success; 1 is an application error whose message follows;
// 2 is an injected server-side fault (chaos testing) that the caller
// must treat as a transport-level loss, not an application error.
const (
	frameRequest = 'Q'
	frameReply   = 'R'

	statusOK    = 0
	statusErr   = 1
	statusFault = 2

	maxFrame = 1 << 30 // sanity cap: 1 GiB per message
)

type tcpTransport struct {
	self *Endpoint
	ln   net.Listener
	addr Address

	mu    sync.Mutex
	conns map[Address]*tcpConn // outgoing connection pool
	done  chan struct{}
	wg    sync.WaitGroup
}

func listenTCP(e *Endpoint, addr Address) (transport, Address, error) {
	hostport := strings.TrimPrefix(string(addr), "tcp://")
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, "", fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	t := &tcpTransport{
		self:  e,
		ln:    ln,
		addr:  Address("tcp://" + ln.Addr().String()),
		conns: make(map[Address]*tcpConn),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, t.addr, nil
}

func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(c)
		}()
	}
}

// serveConn handles inbound frames from one peer connection. Requests are
// dispatched concurrently; replies are matched to pending outgoing calls
// (the same connection carries both directions, so bulk pulls from a server
// back to a client reuse the client's dialed connection).
func (t *tcpTransport) serveConn(nc net.Conn) {
	c := &tcpConn{nc: nc, pending: make(map[uint64]chan tcpReply)}
	t.connLoop(c)
}

func (t *tcpTransport) connLoop(c *tcpConn) {
	defer c.nc.Close()
	for {
		body, err := readFrame(c.nc)
		if err != nil {
			c.failAll(err)
			return
		}
		if len(body) == 0 {
			c.failAll(fmt.Errorf("fabric: empty frame"))
			return
		}
		switch body[0] {
		case frameRequest:
			reqID, rpc, from, sc, payload, err := parseRequest(body)
			if err != nil {
				c.failAll(err)
				return
			}
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				resp, herr := t.self.serve(context.Background(), from, rpc, payload, sc)
				var frame []byte
				if herr != nil {
					status := byte(statusErr)
					var inj *InjectedFault
					if errors.As(herr, &inj) {
						status = statusFault
					}
					frame = buildReply(reqID, status, []byte(herr.Error()))
				} else {
					frame = buildReply(reqID, statusOK, resp)
				}
				c.write(frame)
			}()
		case frameReply:
			if len(body) < 10 {
				c.failAll(fmt.Errorf("fabric: short reply frame"))
				return
			}
			reqID := binary.LittleEndian.Uint64(body[1:9])
			status := body[9]
			c.deliver(reqID, tcpReply{status: status, payload: append([]byte(nil), body[10:]...)})
		default:
			c.failAll(fmt.Errorf("fabric: unknown frame kind %q", body[0]))
			return
		}
	}
}

func (t *tcpTransport) call(ctx context.Context, target Address, rpc string, payload []byte, sc obs.SpanContext) ([]byte, error) {
	c, err := t.getConn(target)
	if err != nil {
		return nil, err
	}
	reqID, ch := c.newPending()
	frame := buildRequest(reqID, rpc, t.addr, sc, payload)
	if err := c.write(frame); err != nil {
		c.cancelPending(reqID)
		t.dropConn(target, c)
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, target, err)
	}
	select {
	case r, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("%w: %s: connection lost", ErrUnreachable, target)
		}
		if r.status == statusFault {
			return nil, &InjectedFault{Err: fmt.Errorf("%w: %s dropped %s: %s", ErrUnreachable, target, rpc, r.payload)}
		}
		if r.status == statusErr {
			return nil, &RemoteError{RPC: rpc, Msg: string(r.payload)}
		}
		return r.payload, nil
	case <-ctx.Done():
		c.cancelPending(reqID)
		return nil, ctx.Err()
	}
}

func (t *tcpTransport) getConn(target Address) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[target]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	hostport := strings.TrimPrefix(string(target), "tcp://")
	nc, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, target, err)
	}
	c := &tcpConn{nc: nc, pending: make(map[uint64]chan tcpReply)}

	t.mu.Lock()
	if existing, ok := t.conns[target]; ok {
		t.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	t.conns[target] = c
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.connLoop(c)
		t.dropConn(target, c)
	}()
	return c, nil
}

func (t *tcpTransport) dropConn(target Address, c *tcpConn) {
	t.mu.Lock()
	if t.conns[target] == c {
		delete(t.conns, target)
	}
	t.mu.Unlock()
	c.failAll(fmt.Errorf("connection dropped"))
	c.nc.Close()
}

func (t *tcpTransport) close() error {
	close(t.done)
	err := t.ln.Close()
	t.mu.Lock()
	for a, c := range t.conns {
		c.nc.Close()
		delete(t.conns, a)
	}
	t.mu.Unlock()
	// Do not wait for handler goroutines: a handler may be blocked on a
	// call to another endpoint that is also closing.
	return err
}

type tcpReply struct {
	status  byte
	payload []byte
}

// tcpConn wraps one socket with request/reply correlation state.
type tcpConn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	nextID  uint64
	pending map[uint64]chan tcpReply
	dead    bool
}

func (c *tcpConn) newPending() (uint64, chan tcpReply) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	c.nextID++
	ch := make(chan tcpReply, 1)
	c.pending[c.nextID] = ch
	return c.nextID, ch
}

func (c *tcpConn) cancelPending(id uint64) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

func (c *tcpConn) deliver(id uint64, r tcpReply) {
	c.pmu.Lock()
	ch, ok := c.pending[id]
	delete(c.pending, id)
	c.pmu.Unlock()
	if ok {
		ch <- r
	}
}

// failAll closes every pending reply channel; waiting callers observe a
// lost connection.
func (c *tcpConn) failAll(error) {
	c.pmu.Lock()
	if c.dead {
		c.pmu.Unlock()
		return
	}
	c.dead = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.pmu.Unlock()
}

func (c *tcpConn) write(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := c.nc.Write(frame)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func buildRequest(reqID uint64, rpc string, from Address, sc obs.SpanContext, payload []byte) []byte {
	body := 1 + 8 + 2 + len(rpc) + 2 + len(from) + 16 + len(payload)
	frame := make([]byte, 4+body)
	binary.LittleEndian.PutUint32(frame[0:], uint32(body))
	b := frame[4:]
	b[0] = frameRequest
	binary.LittleEndian.PutUint64(b[1:], reqID)
	binary.LittleEndian.PutUint16(b[9:], uint16(len(rpc)))
	copy(b[11:], rpc)
	off := 11 + len(rpc)
	binary.LittleEndian.PutUint16(b[off:], uint16(len(from)))
	copy(b[off+2:], from)
	off += 2 + len(from)
	binary.LittleEndian.PutUint64(b[off:], sc.Trace)
	binary.LittleEndian.PutUint64(b[off+8:], sc.Span)
	copy(b[off+16:], payload)
	return frame
}

func parseRequest(body []byte) (reqID uint64, rpc string, from Address, sc obs.SpanContext, payload []byte, err error) {
	fail := func(msg string) (uint64, string, Address, obs.SpanContext, []byte, error) {
		return 0, "", "", obs.SpanContext{}, nil, errors.New("fabric: " + msg)
	}
	if len(body) < 11 {
		return fail("short request frame")
	}
	reqID = binary.LittleEndian.Uint64(body[1:9])
	rpcLen := int(binary.LittleEndian.Uint16(body[9:11]))
	if len(body) < 11+rpcLen+2 {
		return fail("truncated rpc name")
	}
	rpc = string(body[11 : 11+rpcLen])
	off := 11 + rpcLen
	fromLen := int(binary.LittleEndian.Uint16(body[off : off+2]))
	if len(body) < off+2+fromLen+16 {
		return fail("truncated from address or span context")
	}
	from = Address(body[off+2 : off+2+fromLen])
	off += 2 + fromLen
	sc.Trace = binary.LittleEndian.Uint64(body[off : off+8])
	sc.Span = binary.LittleEndian.Uint64(body[off+8 : off+16])
	payload = append([]byte(nil), body[off+16:]...)
	return reqID, rpc, from, sc, payload, nil
}

func buildReply(reqID uint64, status byte, payload []byte) []byte {
	body := 1 + 8 + 1 + len(payload)
	frame := make([]byte, 4+body)
	binary.LittleEndian.PutUint32(frame[0:], uint32(body))
	b := frame[4:]
	b[0] = frameReply
	binary.LittleEndian.PutUint64(b[1:], reqID)
	b[9] = status
	copy(b[10:], payload)
	return frame
}
