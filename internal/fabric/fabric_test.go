package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var addrSeq atomic.Int64

func inprocAddr() Address {
	return Address(fmt.Sprintf("inproc://test-%d", addrSeq.Add(1)))
}

func newPair(t *testing.T, scheme string) (client, server *Endpoint) {
	t.Helper()
	listen := func() *Endpoint {
		var a Address
		if scheme == "inproc" {
			a = inprocAddr()
		} else {
			a = "tcp://127.0.0.1:0"
		}
		e, err := Listen(a)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	return listen(), listen()
}

func testEcho(t *testing.T, scheme string) {
	client, server := newPair(t, scheme)
	server.Register("echo", func(_ context.Context, req *Request) ([]byte, error) {
		return req.Payload, nil
	})
	resp, err := client.Call(context.Background(), server.Addr(), "echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestEchoInproc(t *testing.T) { testEcho(t, "inproc") }
func TestEchoTCP(t *testing.T)    { testEcho(t, "tcp") }

func testRemoteError(t *testing.T, scheme string) {
	client, server := newPair(t, scheme)
	server.Register("fail", func(_ context.Context, _ *Request) ([]byte, error) {
		return nil, errors.New("database on fire")
	})
	_, err := client.Call(context.Background(), server.Addr(), "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if !strings.Contains(re.Msg, "database on fire") {
		t.Fatalf("message lost: %q", re.Msg)
	}
}

func TestRemoteErrorInproc(t *testing.T) { testRemoteError(t, "inproc") }
func TestRemoteErrorTCP(t *testing.T)    { testRemoteError(t, "tcp") }

func testNoSuchRPC(t *testing.T, scheme string) {
	client, server := newPair(t, scheme)
	if _, err := client.Call(context.Background(), server.Addr(), "ghost", nil); err == nil {
		t.Fatal("unregistered RPC should fail")
	}
}

func TestNoSuchRPCInproc(t *testing.T) { testNoSuchRPC(t, "inproc") }
func TestNoSuchRPCTCP(t *testing.T)    { testNoSuchRPC(t, "tcp") }

func TestUnreachableInproc(t *testing.T) {
	client, _ := newPair(t, "inproc")
	_, err := client.Call(context.Background(), "inproc://nobody-home", "x", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func TestUnreachableTCP(t *testing.T) {
	client, _ := newPair(t, "tcp")
	_, err := client.Call(context.Background(), "tcp://127.0.0.1:1", "x", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func testBulkPull(t *testing.T, scheme string) {
	client, server := newPair(t, scheme)
	// Client exposes a large region; the RPC carries only the handle; the
	// server pulls the bytes — the Yokan put-by-RDMA pattern.
	big := bytes.Repeat([]byte("abcdefgh"), 1<<14) // 128 KiB
	var got []byte
	server.Register("store", func(ctx context.Context, req *Request) ([]byte, error) {
		h, _, err := DecodeBulkHandle(req.Payload)
		if err != nil {
			return nil, err
		}
		data, err := req.PullBulk(ctx, h)
		if err != nil {
			return nil, err
		}
		got = data
		return []byte("ok"), nil
	})
	h := client.ExposeBulk(big)
	defer client.FreeBulk(h)
	resp, err := client.Call(context.Background(), server.Addr(), "store", h.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ok" || !bytes.Equal(got, big) {
		t.Fatalf("bulk transfer corrupted: resp=%q len(got)=%d", resp, len(got))
	}
	st := client.Stats()
	if st.CallsSent == 0 {
		t.Error("client stats not counted")
	}
	if server.Stats().CallsServed == 0 {
		t.Error("server stats not counted")
	}
}

func TestBulkPullInproc(t *testing.T) { testBulkPull(t, "inproc") }
func TestBulkPullTCP(t *testing.T)    { testBulkPull(t, "tcp") }

func TestBulkFreeInvalidatesHandle(t *testing.T) {
	client, server := newPair(t, "inproc")
	server.Register("pull", func(ctx context.Context, req *Request) ([]byte, error) {
		h, _, err := DecodeBulkHandle(req.Payload)
		if err != nil {
			return nil, err
		}
		return req.PullBulk(ctx, h)
	})
	h := client.ExposeBulk([]byte("data"))
	client.FreeBulk(h)
	if _, err := client.Call(context.Background(), server.Addr(), "pull", h.Encode(nil)); err == nil {
		t.Fatal("pull of freed handle should fail")
	}
}

func TestBulkHandleCodec(t *testing.T) {
	h := BulkHandle{ID: 7, Size: 1234}
	enc := h.Encode([]byte("prefix"))
	got, rest, err := DecodeBulkHandle(enc[6:])
	if err != nil || got != h || len(rest) != 0 {
		t.Fatalf("codec: %v %v rest=%d", got, err, len(rest))
	}
	if _, _, err := DecodeBulkHandle([]byte{1, 2}); err == nil {
		t.Fatal("short handle should error")
	}
}

func TestConcurrentCalls(t *testing.T) {
	for _, scheme := range []string{"inproc", "tcp"} {
		t.Run(scheme, func(t *testing.T) {
			client, server := newPair(t, scheme)
			server.Register("double", func(_ context.Context, req *Request) ([]byte, error) {
				return append(req.Payload, req.Payload...), nil
			})
			var wg sync.WaitGroup
			errs := make(chan error, 200)
			for i := 0; i < 200; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					msg := []byte(fmt.Sprintf("m%d", i))
					resp, err := client.Call(context.Background(), server.Addr(), "double", msg)
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(resp, append(msg, msg...)) {
						errs <- fmt.Errorf("bad response %q for %q", resp, msg)
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestContextCancellation(t *testing.T) {
	client, server := newPair(t, "inproc")
	started := make(chan struct{})
	server.Register("slow", func(ctx context.Context, _ *Request) ([]byte, error) {
		close(started)
		time.Sleep(2 * time.Second)
		return nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	start := time.Now()
	_, err := client.Call(ctx, server.Addr(), "slow", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not unblock the call promptly")
	}
}

func TestCallAfterClose(t *testing.T) {
	client, server := newPair(t, "inproc")
	client.Close()
	if _, err := client.Call(context.Background(), server.Addr(), "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Closing twice is fine.
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInprocAddressReuse(t *testing.T) {
	a := inprocAddr()
	e1, err := Listen(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen(a); err == nil {
		t.Fatal("duplicate inproc address should fail")
	}
	e1.Close()
	// After close the name is free again.
	e2, err := Listen(a)
	if err != nil {
		t.Fatal(err)
	}
	e2.Close()
}

func TestBadScheme(t *testing.T) {
	if _, err := Listen("carrier-pigeon://x"); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestNetSimLatency(t *testing.T) {
	sim := &NetSim{Latency: 50 * time.Millisecond}
	a := inprocAddr()
	client, err := Listen(a, WithNetSim(sim))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server, err := Listen(inprocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Register("noop", func(context.Context, *Request) ([]byte, error) { return nil, nil })
	start := time.Now()
	if _, err := client.Call(context.Background(), server.Addr(), "noop", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

func TestNetSimFaultInjection(t *testing.T) {
	boom := errors.New("injected fault")
	calls := 0
	sim := &NetSim{Fault: func(Address, string, int, string) error {
		calls++
		if calls <= 2 {
			return boom
		}
		return nil
	}}
	client, err := Listen(inprocAddr(), WithNetSim(sim))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server, _ := Listen(inprocAddr())
	defer server.Close()
	server.Register("noop", func(context.Context, *Request) ([]byte, error) { return nil, nil })
	for i := 0; i < 2; i++ {
		if _, err := client.Call(context.Background(), server.Addr(), "noop", nil); !errors.Is(err, boom) {
			t.Fatalf("call %d: want injected fault, got %v", i, err)
		}
	}
	if _, err := client.Call(context.Background(), server.Addr(), "noop", nil); err != nil {
		t.Fatalf("third call should succeed: %v", err)
	}
	if client.Stats().Errors != 2 {
		t.Fatalf("error count = %d", client.Stats().Errors)
	}
}

func TestNetSimInjectionHardFail(t *testing.T) {
	// A tiny injection budget in hard-fail mode reproduces the Aries NIC
	// oversaturation crashes from §IV-E.
	sim := &NetSim{InjectionBps: 10, InjectionBurst: 100, InjectionHardFail: true}
	client, err := Listen(inprocAddr(), WithNetSim(sim))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server, _ := Listen(inprocAddr())
	defer server.Close()
	server.Register("noop", func(context.Context, *Request) ([]byte, error) { return nil, nil })

	payload := bytes.Repeat([]byte{1}, 60)
	if _, err := client.Call(context.Background(), server.Addr(), "noop", payload); err != nil {
		t.Fatalf("first call within burst should pass: %v", err)
	}
	_, err = client.Call(context.Background(), server.Addr(), "noop", payload)
	if !errors.Is(err, ErrInjectionOverload) {
		t.Fatalf("want ErrInjectionOverload, got %v", err)
	}
}

func TestNetSimBandwidth(t *testing.T) {
	sim := &NetSim{BandwidthBps: 1 << 20} // 1 MiB/s
	client, err := Listen(inprocAddr(), WithNetSim(sim))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server, _ := Listen(inprocAddr())
	defer server.Close()
	server.Register("noop", func(context.Context, *Request) ([]byte, error) { return nil, nil })
	payload := make([]byte, 1<<18) // 256 KiB -> 250ms at 1 MiB/s
	start := time.Now()
	if _, err := client.Call(context.Background(), server.Addr(), "noop", payload); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("bandwidth cost not applied: %v", d)
	}
}

func TestPayloadIsolationInproc(t *testing.T) {
	client, server := newPair(t, "inproc")
	server.Register("mutate", func(_ context.Context, req *Request) ([]byte, error) {
		for i := range req.Payload {
			req.Payload[i] = 0xff
		}
		return req.Payload, nil
	})
	orig := []byte{1, 2, 3}
	resp, err := client.Call(context.Background(), server.Addr(), "mutate", orig)
	if err != nil {
		t.Fatal(err)
	}
	if orig[0] != 1 {
		t.Fatal("handler mutated the caller's buffer")
	}
	resp[0] = 9 // response is also a private copy
}

func TestDispatcherOverride(t *testing.T) {
	client, server := newPair(t, "inproc")
	var dispatched atomic.Int32
	server.SetDispatcher(func(run func()) {
		dispatched.Add(1)
		go run()
	})
	server.Register("noop", func(context.Context, *Request) ([]byte, error) { return nil, nil })
	if _, err := client.Call(context.Background(), server.Addr(), "noop", nil); err != nil {
		t.Fatal(err)
	}
	if dispatched.Load() != 1 {
		t.Fatalf("dispatcher used %d times", dispatched.Load())
	}
}

func TestSchemeParsing(t *testing.T) {
	if Address("tcp://x:1").Scheme() != "tcp" || Address("bogus").Scheme() != "" {
		t.Fatal("scheme parsing broken")
	}
}

func BenchmarkRPCInprocSmall(b *testing.B) {
	client, _ := Listen(inprocAddr())
	server, _ := Listen(inprocAddr())
	defer client.Close()
	defer server.Close()
	server.Register("echo", func(_ context.Context, req *Request) ([]byte, error) {
		return req.Payload, nil
	})
	payload := []byte("0123456789abcdef")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, server.Addr(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCTCPSmall(b *testing.B) {
	client, _ := Listen("tcp://127.0.0.1:0")
	server, _ := Listen("tcp://127.0.0.1:0")
	defer client.Close()
	defer server.Close()
	server.Register("echo", func(_ context.Context, req *Request) ([]byte, error) {
		return req.Payload, nil
	})
	payload := []byte("0123456789abcdef")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, server.Addr(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRPCProfile(t *testing.T) {
	client, server := newPair(t, "inproc")
	server.Register("fast", func(context.Context, *Request) ([]byte, error) { return nil, nil })
	server.Register("boom", func(context.Context, *Request) ([]byte, error) {
		return nil, errors.New("nope")
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := client.Call(ctx, server.Addr(), "fast", nil); err != nil {
			t.Fatal(err)
		}
	}
	client.Call(ctx, server.Addr(), "boom", nil)

	profiles := client.Profile()
	byName := map[string]RPCProfile{}
	for _, p := range profiles {
		byName[p.RPC] = p
	}
	fast := byName["fast"]
	if fast.Calls != 5 || fast.Errors != 0 {
		t.Fatalf("fast profile = %+v", fast)
	}
	if fast.Mean() <= 0 || fast.Max < fast.Min || fast.Total < fast.Max {
		t.Fatalf("fast latency aggregates inconsistent: %+v", fast)
	}
	boomP := byName["boom"]
	if boomP.Errors != 1 || boomP.Calls != 0 {
		t.Fatalf("boom profile = %+v", boomP)
	}
	// Server-side endpoint has no origin-side breadcrumbs.
	if len(server.Profile()) != 0 {
		t.Fatalf("server profile = %v", server.Profile())
	}
	if (RPCProfile{}).Mean() != 0 {
		t.Fatal("zero profile mean should be 0")
	}
}

func TestBulkSweepReclaimsAbandonedRegions(t *testing.T) {
	e, err := Listen(inprocAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	h1 := e.ExposeBulk([]byte("old region"))
	time.Sleep(20 * time.Millisecond)
	h2 := e.ExposeBulk([]byte("fresh region"))
	if e.BulkRegions() != 2 {
		t.Fatalf("regions = %d", e.BulkRegions())
	}
	// Sweep anything older than 10ms: h1 goes, h2 stays.
	if n := e.SweepBulk(10 * time.Millisecond); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if e.BulkRegions() != 1 {
		t.Fatalf("regions after sweep = %d", e.BulkRegions())
	}
	if _, err := e.lookupBulk(h1); err == nil {
		t.Fatal("swept handle should be gone")
	}
	if _, err := e.lookupBulk(h2); err != nil {
		t.Fatalf("fresh handle lost: %v", err)
	}
	// maxAge <= 0 sweeps everything.
	if n := e.SweepBulk(0); n != 1 {
		t.Fatalf("full sweep reclaimed %d", n)
	}
	if e.BulkRegions() != 0 {
		t.Fatal("regions remain after full sweep")
	}
}
