package fabric

import (
	"testing"
	"time"
)

// TestProfileFirstCallFails is the regression test for the failed-first-
// call Min bug: record used to seed a freshly created profile with the
// failed call's latency as Min before taking the error branch, so a
// snapshot taken before any success reported a failure's latency despite
// the documented promise that errors are excluded from latency figures.
func TestProfileFirstCallFails(t *testing.T) {
	var pr profiler
	pr.record("get", 7*time.Second, true)

	p := snapshotOne(t, &pr, "get")
	if p.Errors != 1 || p.Calls != 0 {
		t.Fatalf("after failed first call: %+v", p)
	}
	if p.Min != 0 || p.Max != 0 || p.Total != 0 {
		t.Fatalf("failed call leaked into latency figures: %+v", p)
	}

	// The first success seeds Min/Max/Total, unaffected by the earlier
	// failure's (larger) latency.
	pr.record("get", 5*time.Millisecond, false)
	p = snapshotOne(t, &pr, "get")
	if p.Calls != 1 || p.Min != 5*time.Millisecond || p.Max != 5*time.Millisecond {
		t.Fatalf("after first success: %+v", p)
	}

	// Later successes keep the usual min/max behaviour.
	pr.record("get", 2*time.Millisecond, false)
	pr.record("get", 9*time.Millisecond, false)
	p = snapshotOne(t, &pr, "get")
	if p.Min != 2*time.Millisecond || p.Max != 9*time.Millisecond || p.Calls != 3 {
		t.Fatalf("after more successes: %+v", p)
	}
	if p.Errors != 1 {
		t.Fatalf("errors = %d, want 1", p.Errors)
	}
}

func snapshotOne(t *testing.T, pr *profiler, rpc string) RPCProfile {
	t.Helper()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	p := pr.m[rpc]
	if p == nil {
		t.Fatalf("no profile for %q", rpc)
	}
	return *p
}
