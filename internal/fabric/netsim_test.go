package fabric

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is an adjustable time source for deterministic token-bucket
// tests — no sleeping, no wall-clock sensitivity.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

// TestTokenBucketHardFailDeterministic drives the injection token bucket
// with a fake clock: the budget empties exactly at the configured burst,
// refills at exactly InjectionBps, and hard-fail mode rolls the debit
// back so a failed send does not consume budget.
func TestTokenBucketHardFailDeterministic(t *testing.T) {
	clock := newFakeClock()
	sim := &NetSim{
		InjectionBps:      1000,
		InjectionBurst:    500,
		InjectionHardFail: true,
		Now:               clock.now,
	}

	// The bucket starts full at burst: 500 bytes pass.
	if _, err := sim.takeTokens(500); err != nil {
		t.Fatalf("first 500B: %v", err)
	}
	// Empty bucket: the very next byte overloads.
	if _, err := sim.takeTokens(1); !errors.Is(err, ErrInjectionOverload) {
		t.Fatalf("want overload, got %v", err)
	}
	// The failed send must not have consumed budget: after exactly 250ms
	// the bucket holds 250 tokens — 250 pass, 251 would not.
	clock.advance(250 * time.Millisecond)
	if _, err := sim.takeTokens(250); err != nil {
		t.Fatalf("250B after 250ms refill: %v", err)
	}
	if _, err := sim.takeTokens(1); !errors.Is(err, ErrInjectionOverload) {
		t.Fatalf("bucket should be empty again, got %v", err)
	}
	// Refill never exceeds the burst capacity.
	clock.advance(time.Hour)
	if _, err := sim.takeTokens(500); err != nil {
		t.Fatalf("full burst after long idle: %v", err)
	}
	if _, err := sim.takeTokens(1); !errors.Is(err, ErrInjectionOverload) {
		t.Fatalf("burst cap not enforced: %v", err)
	}
}

// TestTokenBucketThrottleWaitIsExact checks throttle mode's computed
// wait: overdrawing by N bytes at R bytes/s must ask for exactly N/R.
func TestTokenBucketThrottleWaitIsExact(t *testing.T) {
	clock := newFakeClock()
	sim := &NetSim{
		InjectionBps:   1000,
		InjectionBurst: 100,
		Now:            clock.now,
	}
	if wait, err := sim.takeTokens(100); err != nil || wait != 0 {
		t.Fatalf("within burst: wait=%v err=%v", wait, err)
	}
	// 500 bytes over an empty bucket at 1000 B/s ⇒ 500ms.
	wait, err := sim.takeTokens(500)
	if err != nil {
		t.Fatal(err)
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("wait=%v, want 500ms", wait)
	}
	// The deficit is real: after 500ms the bucket is at zero, so another
	// 100B costs exactly 100ms more.
	clock.advance(500 * time.Millisecond)
	wait, err = sim.takeTokens(100)
	if err != nil {
		t.Fatal(err)
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("wait=%v, want 100ms", wait)
	}
}
