package fabric

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
)

// BulkHandle describes a region of memory exposed by an endpoint for remote
// transfer, the analog of an hg_bulk_t. Handles are plain data and travel
// inside RPC payloads.
type BulkHandle struct {
	ID   uint64
	Size uint64
}

// Encode appends the handle's wire form (16 bytes) to dst.
func (h BulkHandle) Encode(dst []byte) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], h.ID)
	binary.LittleEndian.PutUint64(b[8:], h.Size)
	return append(dst, b[:]...)
}

// DecodeBulkHandle parses a handle from the front of src and returns the
// remaining bytes.
func DecodeBulkHandle(src []byte) (BulkHandle, []byte, error) {
	if len(src) < 16 {
		return BulkHandle{}, nil, fmt.Errorf("fabric: truncated bulk handle")
	}
	h := BulkHandle{
		ID:   binary.LittleEndian.Uint64(src[0:]),
		Size: binary.LittleEndian.Uint64(src[8:]),
	}
	return h, src[16:], nil
}

// bulkTable tracks exposed regions by id, with expose timestamps so
// abandoned regions (a client that died between get_multi and bulk_free)
// can be swept.
type bulkRegion struct {
	data []byte
	at   time.Time
}

type bulkTable struct {
	mu      sync.Mutex
	next    uint64
	regions map[uint64]bulkRegion
}

func (t *bulkTable) init() {
	t.regions = make(map[uint64]bulkRegion)
}

// ExposeBulk registers data for remote pull and returns its handle. The
// caller must keep the data unchanged until FreeBulk.
func (e *Endpoint) ExposeBulk(data []byte) BulkHandle {
	t := &e.bulk
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	t.regions[t.next] = bulkRegion{data: data, at: time.Now()}
	return BulkHandle{ID: t.next, Size: uint64(len(data))}
}

// SweepBulk frees every exposed region older than maxAge and returns how
// many were reclaimed. Servers run it periodically so that clients that
// died between receiving a bulk handle and releasing it cannot leak server
// memory.
func (e *Endpoint) SweepBulk(maxAge time.Duration) int {
	t := &e.bulk
	cutoff := time.Now().Add(-maxAge)
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, r := range t.regions {
		if r.at.Before(cutoff) || maxAge <= 0 {
			delete(t.regions, id)
			n++
		}
	}
	return n
}

// BulkRegions returns how many regions are currently exposed.
func (e *Endpoint) BulkRegions() int {
	e.bulk.mu.Lock()
	defer e.bulk.mu.Unlock()
	return len(e.bulk.regions)
}

// FreeBulk releases an exposed region. Freeing an unknown handle is a
// no-op, matching HG_Bulk_free being safe after transfer completion.
func (e *Endpoint) FreeBulk(h BulkHandle) {
	e.bulk.mu.Lock()
	delete(e.bulk.regions, h.ID)
	e.bulk.mu.Unlock()
}

// lookupBulk returns the exposed bytes for a handle.
func (e *Endpoint) lookupBulk(h BulkHandle) ([]byte, error) {
	e.bulk.mu.Lock()
	defer e.bulk.mu.Unlock()
	r, ok := e.bulk.regions[h.ID]
	if !ok {
		return nil, fmt.Errorf("fabric: unknown bulk handle %d at %s", h.ID, e.addr)
	}
	if uint64(len(r.data)) != h.Size {
		return nil, fmt.Errorf("fabric: bulk handle %d size mismatch: exposed %d, handle %d",
			h.ID, len(r.data), h.Size)
	}
	return r.data, nil
}

// bulkPullRPC is the internal RPC every endpoint serves so that peers can
// pull exposed regions. It is registered at Listen time.
const bulkPullRPC = "__fabric_bulk_pull__"

func (e *Endpoint) registerBulkService() {
	e.Register(bulkPullRPC, func(_ context.Context, req *Request) ([]byte, error) {
		h, _, err := DecodeBulkHandle(req.Payload)
		if err != nil {
			return nil, err
		}
		return e.lookupBulk(h)
	})
}

// PullBulkFrom fetches the bytes behind a handle exposed at the remote
// address. It is the initiator-side transfer used when a server exposes a
// large response for the client to pull.
func (e *Endpoint) PullBulkFrom(ctx context.Context, from Address, h BulkHandle) ([]byte, error) {
	return e.pullBulk(ctx, from, h)
}

// pullBulk fetches the bytes behind a handle exposed at the remote address.
func (e *Endpoint) pullBulk(ctx context.Context, from Address, h BulkHandle) ([]byte, error) {
	// Bulk pulls keep the initiating request's tenant: the transfer is
	// part of that request's work and bills against the same identity.
	ti := qos.IdentityFromContext(ctx)
	if ti.Tenant == "" {
		ti.Tenant = e.tenant
	}
	if e.sim != nil {
		// Bulk transfers pay bandwidth on the puller's model too; this is
		// the RDMA read path.
		if err := e.sim.beforeSend(ctx, from, bulkPullRPC, int(h.Size), ti.Tenant); err != nil {
			return nil, err
		}
	}
	// Bulk pulls propagate the active span so the transfer's server-side
	// span links into the trace that initiated it. The pulled data is
	// returned GC-owned (the transport's done is deliberately unused):
	// bulk payloads are large, long-lived by nature — decoded values alias
	// them — so recycling their frames would be unsafe.
	data, _, _, err := e.trans.call(ctx, from, bulkPullRPC, h.Encode(nil), obs.SpanFromContext(ctx), ti)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) != h.Size {
		return nil, fmt.Errorf("fabric: bulk pull returned %d bytes, handle says %d", len(data), h.Size)
	}
	e.stats.bulkPulls.Add(1)
	e.stats.bulkBytes.Add(int64(len(data)))
	return data, nil
}
