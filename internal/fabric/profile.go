package fabric

import (
	"sort"
	"sync"
	"time"
)

// RPC breadcrumb profiling, the analog of Margo's breadcrumb profiles: the
// endpoint records per-RPC-name call counts and latency aggregates on the
// origin side. The Mochi papers use exactly this data to diagnose HEPnOS
// performance (the §V-cited monitoring work); hepnos-go exposes it through
// Endpoint.Profile.

// RPCProfile aggregates one RPC name's origin-side latencies.
type RPCProfile struct {
	RPC   string
	Calls int64
	// Total, Max and Min are cumulative/worst/best round-trip latencies.
	Total time.Duration
	Max   time.Duration
	Min   time.Duration
	// Errors counts failed calls (not included in the latency figures).
	Errors int64
}

// Mean returns the average round-trip latency.
func (p RPCProfile) Mean() time.Duration {
	if p.Calls == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Calls)
}

type profiler struct {
	mu sync.Mutex
	m  map[string]*RPCProfile
}

func (pr *profiler) record(rpc string, d time.Duration, failed bool) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.m == nil {
		pr.m = make(map[string]*RPCProfile)
	}
	p := pr.m[rpc]
	if p == nil {
		// Min is seeded by the first *successful* call (the Calls == 1
		// branch below), never here: a failed first call must not leak
		// its latency into the error-excluded figures.
		p = &RPCProfile{RPC: rpc}
		pr.m[rpc] = p
	}
	if failed {
		p.Errors++
		return
	}
	p.Calls++
	p.Total += d
	if d > p.Max {
		p.Max = d
	}
	if p.Calls == 1 || d < p.Min {
		p.Min = d
	}
}

// Profile returns a snapshot of the endpoint's origin-side RPC breadcrumbs,
// sorted by cumulative time (hottest first).
func (e *Endpoint) Profile() []RPCProfile {
	e.prof.mu.Lock()
	defer e.prof.mu.Unlock()
	out := make([]RPCProfile, 0, len(e.prof.m))
	for _, p := range e.prof.m {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}
