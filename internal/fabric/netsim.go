package fabric

import (
	"context"
	"sync"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
)

// NetSim is an optional cost and fault model applied to an endpoint's
// outgoing traffic. It lets in-process deployments exhibit the network
// behaviours the paper's evaluation depends on: per-message latency,
// finite link bandwidth and — crucially for §IV-E, where runs crashed by
// "oversaturation of the injection bandwidth of the Aries NIC" — a hard
// injection budget that fails sends once exceeded.
//
// The zero value costs nothing and never fails. All fields are read after
// construction; mutate them only before the endpoint starts sending.
type NetSim struct {
	// Latency is added to every send.
	Latency time.Duration
	// BandwidthBps spreads payload bytes over time. Zero means infinite.
	BandwidthBps float64
	// InjectionBps caps sustained outgoing byte rate with a token bucket.
	// Zero means uncapped.
	InjectionBps float64
	// InjectionBurst is the token bucket capacity in bytes. Defaults to
	// one second of InjectionBps when zero.
	InjectionBurst float64
	// InjectionHardFail makes the endpoint fail sends with
	// ErrInjectionOverload instead of throttling when the bucket is empty,
	// reproducing the Aries NIC crash mode.
	InjectionHardFail bool
	// Fault, when non-nil, is consulted before each send and may return an
	// error to inject a failure (drop) for that message. tenant is the QoS
	// tenant the message is attributed to (empty for untagged traffic), so
	// chaos scenarios can storm tenants selectively.
	Fault func(target Address, rpc string, size int, tenant string) error
	// Now supplies the token bucket's clock; nil means time.Now. Chaos
	// tests inject a fake clock here so injection-budget behaviour is
	// deterministic instead of sleep-calibrated.
	Now func() time.Time

	mu       sync.Mutex
	tokens   float64
	lastFill time.Time
}

// now returns the simulation clock.
func (s *NetSim) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// ErrInjectionOverload reports that the injection bandwidth budget was
// exhausted in hard-fail mode. It classifies as unavailable: the message
// never left the NIC, so backing off and re-sending is safe.
var ErrInjectionOverload = xerr.Sentinel("fabric/injection_overload", xerr.ClassUnavailable, "fabric: NIC injection bandwidth exceeded")

// beforeSend applies the cost model; it blocks for simulated transfer time
// and returns an error for injected faults.
func (s *NetSim) beforeSend(ctx context.Context, target Address, rpc string, size int, tenant string) error {
	if s == nil {
		return nil
	}
	if s.Fault != nil {
		if err := s.Fault(target, rpc, size, tenant); err != nil {
			return err
		}
	}
	delay := s.Latency
	if s.BandwidthBps > 0 {
		delay += time.Duration(float64(size) / s.BandwidthBps * float64(time.Second))
	}
	if s.InjectionBps > 0 {
		wait, err := s.takeTokens(float64(size))
		if err != nil {
			return err
		}
		delay += wait
	}
	if delay <= 0 {
		return nil
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// takeTokens debits size bytes from the bucket, returning how long the
// caller must wait for the debit to be covered (throttle mode) or
// ErrInjectionOverload (hard-fail mode).
func (s *NetSim) takeTokens(size float64) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	burst := s.InjectionBurst
	if burst <= 0 {
		burst = s.InjectionBps
	}
	now := s.now()
	if s.lastFill.IsZero() {
		s.tokens = burst
	} else {
		s.tokens += now.Sub(s.lastFill).Seconds() * s.InjectionBps
		if s.tokens > burst {
			s.tokens = burst
		}
	}
	s.lastFill = now
	s.tokens -= size
	if s.tokens >= 0 {
		return 0, nil
	}
	if s.InjectionHardFail {
		s.tokens += size // roll back; the message was not sent
		return 0, ErrInjectionOverload
	}
	return time.Duration(-s.tokens / s.InjectionBps * float64(time.Second)), nil
}
