package fabric

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
)

// encodeLegacyRequest hand-builds a pre-QoS 'Q' frame body — the format
// old endpoints emit: no class byte, no tenant. parseRequest must keep
// accepting it forever (mixed-version deployments), yielding the zero
// identity.
func encodeLegacyRequest(reqID uint64, rpc string, from Address, sc obs.SpanContext, payload []byte) []byte {
	b := []byte{frameRequest}
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], reqID)
	b = append(b, u8[:]...)
	var u2 [2]byte
	binary.LittleEndian.PutUint16(u2[:], uint16(len(rpc)))
	b = append(b, u2[:]...)
	b = append(b, rpc...)
	binary.LittleEndian.PutUint16(u2[:], uint16(len(from)))
	b = append(b, u2[:]...)
	b = append(b, from...)
	binary.LittleEndian.PutUint64(u8[:], sc.Trace)
	b = append(b, u8[:]...)
	binary.LittleEndian.PutUint64(u8[:], sc.Span)
	b = append(b, u8[:]...)
	return append(b, payload...)
}

// FuzzRequestHeaderRoundTrip: whatever identity/span/rpc combination goes
// through appendRequestHeader must come back identical from parseRequest,
// with the payload as an exact view of the remaining bytes.
func FuzzRequestHeaderRoundTrip(f *testing.F) {
	f.Add(uint64(1), "yokan:0#put", "inproc://client-1", uint64(7), uint64(8), byte(1), "nova", []byte("hello"))
	f.Add(uint64(0), "", "", uint64(0), uint64(0), byte(0), "", []byte(nil))
	f.Add(^uint64(0), "margo#ping", "tcp://127.0.0.1:9999", ^uint64(0), ^uint64(0), byte(2), "a-tenant-with-a-long-name", bytes.Repeat([]byte{0xab}, 300))
	f.Add(uint64(42), "get", "inproc://x", uint64(1), uint64(2), byte(200), string([]byte{0, 255, 7}), []byte{0})
	f.Fuzz(func(t *testing.T, reqID uint64, rpc, from string, trace, span uint64, class byte, tenant string, payload []byte) {
		if len(rpc) > 0xffff || len(from) > 0xffff || len(tenant) > 0xffff {
			t.Skip("length fields are u16 by contract")
		}
		sc := obs.SpanContext{Trace: trace, Span: span}
		ti := qos.Identity{Tenant: tenant, Class: qos.Class(class)}
		hdr := appendRequestHeader(nil, reqID, rpc, Address(from), sc, ti)
		if len(hdr) != requestHeaderLen(rpc, Address(from), ti) {
			t.Fatalf("requestHeaderLen = %d, appendRequestHeader produced %d bytes",
				requestHeaderLen(rpc, Address(from), ti), len(hdr))
		}
		body := append(hdr, payload...)
		gotID, gotRPC, gotFrom, gotSC, gotTI, gotPayload, err := parseRequest(body)
		if err != nil {
			t.Fatalf("parse of a self-encoded frame failed: %v", err)
		}
		if gotID != reqID || gotRPC != rpc || gotFrom != Address(from) {
			t.Fatalf("envelope mismatch: id=%d rpc=%q from=%q", gotID, gotRPC, gotFrom)
		}
		if gotSC != sc {
			t.Fatalf("span context mismatch: %+v != %+v", gotSC, sc)
		}
		if gotTI != ti {
			t.Fatalf("identity mismatch: %+v != %+v", gotTI, ti)
		}
		if !bytes.Equal(gotPayload, payload) {
			t.Fatalf("payload mismatch: %d bytes != %d bytes", len(gotPayload), len(payload))
		}
	})
}

// FuzzParseRequestNoPanic: parseRequest over arbitrary bytes must return
// an error or a consistent parse — never panic, never read out of bounds.
func FuzzParseRequestNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameRequest})
	f.Add(encodeLegacyRequest(9, "put", "inproc://c", obs.SpanContext{Trace: 1, Span: 2}, []byte("x")))
	f.Add(appendRequestHeader(nil, 3, "get", "tcp://h:1", obs.SpanContext{}, qos.Identity{Tenant: "t", Class: qos.ClassBatch}))
	// Truncation seeds: a QoS frame cut inside each variable-length field.
	full := appendRequestHeader(nil, 5, "rpcname", "inproc://from", obs.SpanContext{Trace: 4, Span: 5}, qos.Identity{Tenant: "tenant", Class: 1})
	for _, cut := range []int{1, 9, 12, 20, len(full) - 3, len(full) - 1} {
		if cut > 0 && cut < len(full) {
			f.Add(full[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _, _, _, _, payload, err := parseRequest(body)
		if err != nil {
			return
		}
		// A successful parse's payload must be a view inside body.
		if len(payload) > len(body) {
			t.Fatalf("payload longer than frame: %d > %d", len(payload), len(body))
		}
	})
}

// Golden legacy frames: a tenant-less 'Q' body from a pre-QoS endpoint
// parses with the zero identity and an intact envelope. This is the
// compatibility contract with already-deployed peers.
func TestParseRequestLegacyGolden(t *testing.T) {
	cases := []struct {
		name    string
		reqID   uint64
		rpc     string
		from    Address
		sc      obs.SpanContext
		payload []byte
	}{
		{"plain", 7, "yokan:0#put_multi", "inproc://hepnos-client-1", obs.SpanContext{Trace: 111, Span: 222}, []byte("payload-bytes")},
		{"empty-fields", 0, "", "", obs.SpanContext{}, nil},
		{"no-span", 12345, "margo#ping", "tcp://127.0.0.1:4242", obs.SpanContext{}, []byte{1, 2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := encodeLegacyRequest(tc.reqID, tc.rpc, tc.from, tc.sc, tc.payload)
			reqID, rpc, from, sc, ti, payload, err := parseRequest(body)
			if err != nil {
				t.Fatalf("legacy frame rejected: %v", err)
			}
			if reqID != tc.reqID || rpc != tc.rpc || from != tc.from || sc != tc.sc {
				t.Fatalf("legacy envelope mismatch: id=%d rpc=%q from=%q sc=%+v", reqID, rpc, from, sc)
			}
			if ti != (qos.Identity{}) {
				t.Fatalf("legacy frame produced a non-zero identity: %+v", ti)
			}
			if !bytes.Equal(payload, tc.payload) {
				t.Fatalf("legacy payload mismatch")
			}
		})
	}
}

// A modern frame's identity survives even when the payload itself begins
// with bytes that look like another header — the header is length-framed,
// not sniffed.
func TestParseRequestPayloadLooksLikeHeader(t *testing.T) {
	inner := appendRequestHeader(nil, 99, "inner", "inproc://i", obs.SpanContext{}, qos.Identity{Tenant: "x"})
	body := appendRequestHeader(nil, 1, "outer", "inproc://o", obs.SpanContext{}, qos.Identity{Tenant: "real", Class: qos.ClassBatch})
	body = append(body, inner...)
	_, rpc, _, _, ti, payload, err := parseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if rpc != "outer" || ti.Tenant != "real" || ti.Class != qos.ClassBatch {
		t.Fatalf("outer envelope corrupted: rpc=%q ti=%+v", rpc, ti)
	}
	if !bytes.Equal(payload, inner) {
		t.Fatal("payload view does not match the embedded bytes")
	}
}
