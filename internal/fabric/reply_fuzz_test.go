package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
)

// encodeLegacyReply hand-builds a pre-QoS 'R' reply body — no pressure
// byte. Old endpoints emit it and parseReply must keep accepting it
// forever, yielding pressure 0.
func encodeLegacyReply(reqID uint64, status byte, payload []byte) []byte {
	b := []byte{frameReply}
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], reqID)
	b = append(b, u8[:]...)
	b = append(b, status)
	return append(b, payload...)
}

// encodeQoSReply builds a modern 'S' body, the shape writeReply emits.
func encodeQoSReply(reqID uint64, status, pressure byte, payload []byte) []byte {
	b := []byte{frameReplyQoS}
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], reqID)
	b = append(b, u8[:]...)
	b = append(b, status, pressure)
	return append(b, payload...)
}

// Golden reply frames: both wire generations, every status code a peer can
// emit. Byte layouts are pinned literally — if either format shifts, a
// mixed-version deployment breaks, so these arrays must never change.
func TestParseReplyGolden(t *testing.T) {
	cases := []struct {
		name     string
		body     []byte
		reqID    uint64
		status   byte
		pressure byte
		payload  []byte
	}{
		{
			name:  "legacy-ok",
			body:  []byte{'R', 7, 0, 0, 0, 0, 0, 0, 0, statusOK, 'h', 'i'},
			reqID: 7, status: statusOK, pressure: 0, payload: []byte("hi"),
		},
		{
			name:  "legacy-err-string",
			body:  []byte{'R', 1, 0, 0, 0, 0, 0, 0, 0, statusErr, 'b', 'o', 'o', 'm'},
			reqID: 1, status: statusErr, pressure: 0, payload: []byte("boom"),
		},
		{
			name:  "legacy-fault",
			body:  []byte{'R', 2, 0, 0, 0, 0, 0, 0, 0, statusFault},
			reqID: 2, status: statusFault, pressure: 0, payload: []byte{},
		},
		{
			name:  "qos-ok-with-pressure",
			body:  []byte{'S', 9, 0, 0, 0, 0, 0, 0, 0, statusOK, 200, 'v'},
			reqID: 9, status: statusOK, pressure: 200, payload: []byte("v"),
		},
		{
			name:  "qos-shed",
			body:  append([]byte{'S', 3, 0, 0, 0, 0, 0, 0, 0, statusShed, 128}, (&qos.ShedError{Tenant: "nova", Reason: "queue full"}).AppendWire(nil)...),
			reqID: 3, status: statusShed, pressure: 128,
			payload: (&qos.ShedError{Tenant: "nova", Reason: "queue full"}).AppendWire(nil),
		},
		{
			name:  "qos-typed",
			body:  append([]byte{'S', 4, 0, 0, 0, 0, 0, 0, 0, statusTyped, 0}, xerr.AppendWire(nil, xerr.Sentinel("test/reply_golden", xerr.ClassNotFound, "gone"))...),
			reqID: 4, status: statusTyped, pressure: 0,
			payload: xerr.AppendWire(nil, xerr.Sentinel("test/reply_golden", xerr.ClassNotFound, "gone")),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reqID, status, pressure, payload, err := parseReply(tc.body)
			if err != nil {
				t.Fatalf("golden frame rejected: %v", err)
			}
			if reqID != tc.reqID || status != tc.status || pressure != tc.pressure {
				t.Fatalf("envelope mismatch: id=%d status=%d pressure=%d", reqID, status, pressure)
			}
			if !bytes.Equal(payload, tc.payload) {
				t.Fatalf("payload mismatch: %q != %q", payload, tc.payload)
			}
		})
	}
}

// The decoded payload of a golden shed frame must still parse into the
// typed ShedError, and a typed frame into the matching sentinel — the
// end-to-end contract the statuses exist for.
func TestParseReplyGoldenPayloadsDecode(t *testing.T) {
	shedBody := encodeQoSReply(3, statusShed, 0,
		(&qos.ShedError{Tenant: "nova", Class: qos.ClassBatch, Reason: "rate limit"}).AppendWire(nil))
	_, status, _, payload, err := parseReply(shedBody)
	if err != nil || status != statusShed {
		t.Fatalf("shed frame: status=%d err=%v", status, err)
	}
	shed := qos.ParseShedWire(payload)
	if shed.Tenant != "nova" || shed.Class != qos.ClassBatch || shed.Reason != "rate limit" {
		t.Fatalf("shed payload mangled: %+v", shed)
	}

	sentinel := xerr.Sentinel("test/reply_decode", xerr.ClassConflict, "lost the race")
	typedBody := encodeQoSReply(4, statusTyped, 0, xerr.AppendWire(nil, sentinel))
	_, status, _, payload, err = parseReply(typedBody)
	if err != nil || status != statusTyped {
		t.Fatalf("typed frame: status=%d err=%v", status, err)
	}
	decoded := xerr.ParseWire(payload)
	if !errors.Is(decoded, sentinel) {
		t.Fatalf("typed payload lost sentinel identity: %v", decoded)
	}
	if xerr.ClassOf(decoded) != xerr.ClassConflict || !xerr.IsRemote(decoded) {
		t.Fatalf("typed payload lost class or remote mark: %v", decoded)
	}
}

// FuzzReplyRoundTrip: any envelope encoded in either generation must come
// back identical from parseReply.
func FuzzReplyRoundTrip(f *testing.F) {
	f.Add(uint64(1), byte(statusOK), byte(0), []byte("resp"), true)
	f.Add(uint64(0), byte(statusErr), byte(255), []byte(nil), false)
	f.Add(^uint64(0), byte(statusTyped), byte(128), bytes.Repeat([]byte{0xee}, 300), true)
	f.Add(uint64(42), byte(99), byte(1), []byte{0, 'R', 0}, false)
	f.Fuzz(func(t *testing.T, reqID uint64, status, pressure byte, payload []byte, legacy bool) {
		var body []byte
		wantPressure := pressure
		if legacy {
			body = encodeLegacyReply(reqID, status, payload)
			wantPressure = 0
		} else {
			body = encodeQoSReply(reqID, status, pressure, payload)
		}
		gotID, gotStatus, gotPressure, gotPayload, err := parseReply(body)
		if err != nil {
			t.Fatalf("parse of a self-encoded frame failed: %v", err)
		}
		if gotID != reqID || gotStatus != status || gotPressure != wantPressure {
			t.Fatalf("envelope mismatch: id=%d status=%d pressure=%d", gotID, gotStatus, gotPressure)
		}
		if !bytes.Equal(gotPayload, payload) {
			t.Fatalf("payload mismatch: %d bytes != %d bytes", len(gotPayload), len(payload))
		}
	})
}

// FuzzParseReplyNoPanic: arbitrary bytes must produce an error or a
// consistent parse — never a panic or an out-of-bounds payload.
func FuzzParseReplyNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameReply})
	f.Add([]byte{frameReplyQoS, 1, 2, 3})
	f.Add(encodeLegacyReply(5, statusOK, []byte("x")))
	f.Add(encodeQoSReply(6, statusShed, 9, []byte("y")))
	f.Fuzz(func(t *testing.T, body []byte) {
		_, _, _, payload, err := parseReply(body)
		if err != nil {
			return
		}
		if len(payload) > len(body) {
			t.Fatalf("payload longer than frame: %d > %d", len(payload), len(body))
		}
	})
}
