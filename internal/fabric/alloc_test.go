package fabric

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

// budgetInprocCall locks the allocation cost of one in-process RPC
// round-trip (256B payload, echo handler). Measured 6 at the time of the
// wire-path refactor (payload isolation copy, handler's echo copy,
// dispatch goroutine, result channel).
const budgetInprocCall = 10

func TestAllocBudgetFabricCall(t *testing.T) {
	srv, err := Listen("inproc://alloc-srv")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register("echo", func(_ context.Context, req *Request) ([]byte, error) {
		return append([]byte(nil), req.Payload...), nil
	})
	cli, err := Listen("inproc://alloc-cli")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx := context.Background()
	payload := bytes.Repeat([]byte{0xab}, 256)
	n := testing.AllocsPerRun(200, func() {
		if _, err := cli.Call(ctx, srv.Addr(), "echo", payload); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("inproc Call(256B echo): %.1f allocs/op (budget %d)", n, budgetInprocCall)
	if n > budgetInprocCall {
		t.Errorf("inproc Call allocs/op = %.1f, budget %d", n, budgetInprocCall)
	}
}

// TestWirePathOwnershipTCP is the use-after-release gate for the pooled
// TCP wire path: many concurrent callers push distinct patterned payloads
// through CallBorrow while the server verifies and echoes them from
// borrowed request views. Every response is byte-checked BEFORE its done()
// releases the frame. Run under -race, any frame recycled while a borrowed
// view (request payload in a handler, or response in a caller) is still
// live shows up as a data race or a pattern mismatch.
func TestWirePathOwnershipTCP(t *testing.T) {
	srv, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register("echo", func(_ context.Context, req *Request) ([]byte, error) {
		// req.Payload is a borrowed view into the pooled request frame.
		// Verify its integrity while holding it, then build the response
		// from it — the copy happens here, inside the borrow window.
		if len(req.Payload) < 3 {
			return nil, fmt.Errorf("short payload")
		}
		id := req.Payload[0]
		for i, b := range req.Payload {
			if b != id {
				return nil, fmt.Errorf("payload corrupted at %d: got %#x want %#x", i, b, id)
			}
		}
		return append([]byte(nil), req.Payload...), nil
	})

	cli, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const workers = 8
	const calls = 60
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			// Varying sizes force frames through different pool classes.
			payload := bytes.Repeat([]byte{id}, 64+int(id)*97)
			for i := 0; i < calls; i++ {
				resp, done, err := cli.CallBorrow(ctx, srv.Addr(), "echo", payload)
				if err != nil {
					t.Errorf("worker %d call %d: %v", id, i, err)
					return
				}
				// The borrow window: every byte must still be ours.
				if !bytes.Equal(resp, payload) {
					t.Errorf("worker %d call %d: response corrupted (frame recycled under a live view?)", id, i)
					if done != nil {
						done()
					}
					return
				}
				if done != nil {
					done()
				}
			}
		}(byte(w + 1))
	}
	wg.Wait()
}

// TestCallBorrowReleaseOptional pins the "release is optional" rule: a
// caller that never invokes done must still get correct, stable bytes (the
// buffer falls to the GC instead of the pool).
func TestCallBorrowReleaseOptional(t *testing.T) {
	srv, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Register("tag", func(_ context.Context, req *Request) ([]byte, error) {
		return append([]byte("tag:"), req.Payload...), nil
	})
	cli, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx := context.Background()
	var kept [][]byte
	for i := 0; i < 50; i++ {
		payload := []byte(fmt.Sprintf("msg-%04d", i))
		resp, _, err := cli.CallBorrow(ctx, srv.Addr(), "tag", payload)
		if err != nil {
			t.Fatal(err)
		}
		kept = append(kept, resp) // retain without releasing
	}
	for i, r := range kept {
		want := fmt.Sprintf("tag:msg-%04d", i)
		if string(r) != want {
			t.Fatalf("retained response %d corrupted: %q, want %q", i, r, want)
		}
	}
}
