// Package margo combines the fabric (Mercury analog) and argo (Argobots
// analog) layers into the simple programming model HEPnOS builds on,
// mirroring the role of the Margo library in the Mochi stack (§II-B).
//
// A margo Instance owns one fabric endpoint and one argo runtime. Services
// attach *providers* to it: named objects answering a set of RPCs, each
// mapped to an Argobots pool. As in Mochi, the provider is the mechanism by
// which the execution resources used to run an RPC (a pool drained by some
// execution streams) are decoupled from the resources the RPC acts on (for
// Yokan, a set of databases).
package margo

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/internal/argo"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
)

// ProviderID distinguishes multiple providers of the same service on one
// endpoint, like Mercury provider ids.
type ProviderID uint16

// rpcName builds the namespaced RPC name for a provider-scoped RPC.
func rpcName(service string, id ProviderID, rpc string) string {
	return fmt.Sprintf("%s:%d#%s", service, id, rpc)
}

// Instance is a running Margo context: endpoint + threading runtime.
type Instance struct {
	ep     *fabric.Endpoint
	rt     *argo.Runtime
	sim    *fabric.NetSim
	tracer *obs.Tracer
	gate   *qos.Gate // nil when QoS is disabled

	mu        sync.Mutex
	providers map[string]*Provider
	closed    bool
}

// Config configures an Instance.
type Config struct {
	// Address to listen on ("inproc://name" or "tcp://host:port").
	Address fabric.Address
	// Argobots describes pools and execution streams. If empty, a default
	// with one pool and RPCXStreams streams is used.
	Argobots argo.Config
	// RPCXStreams is the stream count for the default Argobots config
	// (ignored when Argobots is set). The paper's deployments use 16.
	RPCXStreams int
	// NetSim optionally attaches a network cost model to the endpoint.
	NetSim *fabric.NetSim
	// Resilience optionally attaches a shared retry/backoff/circuit-
	// breaker policy to the endpoint's outgoing calls (see
	// internal/resilience). All forwards issued through this instance are
	// executed under the policy.
	Resilience *resilience.Policy
	// Tracer optionally attaches a span tracer to the endpoint. Provider
	// handlers additionally record an exec span measuring time inside the
	// Argobots pool, so queue wait (server span minus exec span) becomes
	// visible per RPC.
	Tracer *obs.Tracer
	// Tenant, when set, is stamped on every outgoing call whose context
	// carries no explicit QoS identity — the client side of multi-tenancy.
	Tenant string
	// QoS, when Enabled, puts a qos.Gate in front of provider dispatch:
	// admission control, class-aware shedding, weighted fair queueing
	// across tenants, and a pressure level pushed in every reply — the
	// server side of multi-tenancy. Reserved services ("margo" heartbeats,
	// "admin" control plane) bypass the gate.
	QoS qos.Config
	// OnPressure, when non-nil, observes the pressure level each reply
	// envelope carries back from a server. Core wires it to the
	// asyncengine's ingest throttle.
	OnPressure func(target fabric.Address, level uint8)
}

// Init starts a margo instance.
func Init(cfg Config) (*Instance, error) {
	acfg := cfg.Argobots
	if len(acfg.Pools) == 0 {
		n := cfg.RPCXStreams
		if n <= 0 {
			n = 1
		}
		acfg = argo.DefaultConfig(n)
	}
	rt, err := argo.NewRuntime(acfg)
	if err != nil {
		return nil, err
	}
	var opts []fabric.Option
	if cfg.NetSim != nil {
		opts = append(opts, fabric.WithNetSim(cfg.NetSim))
	}
	if cfg.Resilience != nil {
		opts = append(opts, fabric.WithResilience(cfg.Resilience))
	}
	if cfg.Tracer != nil {
		opts = append(opts, fabric.WithTracer(cfg.Tracer))
	}
	if cfg.Tenant != "" {
		opts = append(opts, fabric.WithTenant(cfg.Tenant))
	}
	if cfg.OnPressure != nil {
		opts = append(opts, fabric.WithPressureHook(cfg.OnPressure))
	}
	ep, err := fabric.Listen(cfg.Address, opts...)
	if err != nil {
		rt.Shutdown()
		return nil, err
	}
	m := &Instance{ep: ep, rt: rt, sim: cfg.NetSim, tracer: cfg.Tracer, providers: make(map[string]*Provider)}
	if gate := qos.NewGate(cfg.QoS); gate != nil {
		m.gate = gate
		ep.SetPressureSource(gate.Pressure)
	}
	// Every instance answers the built-in heartbeat directly on the fabric
	// goroutine — no provider pool involved, so a saturated RPC pool cannot
	// make a healthy server look dead to the prober (liveness, not load).
	m.ep.Register(heartbeatRPC, func(ctx context.Context, req *fabric.Request) ([]byte, error) {
		return nil, nil
	})
	return m, nil
}

// heartbeatRPC is the built-in liveness probe every margo instance answers;
// registered under the reserved "margo" service so it can never collide
// with application providers.
var heartbeatRPC = rpcName("margo", 0, "ping")

// Ping issues the built-in heartbeat RPC to a remote instance. It is the
// probe the health layer's prober uses: cheap (empty payload, handled off
// the target's RPC pools) and subject to the instance's fault hooks, so
// chaos-injected server death is visible to it like any other call.
func (m *Instance) Ping(ctx context.Context, target fabric.Address) error {
	_, err := m.ep.Call(ctx, target, heartbeatRPC, nil)
	return err
}

// Addr returns the instance's reachable address.
func (m *Instance) Addr() fabric.Address { return m.ep.Addr() }

// Endpoint exposes the underlying fabric endpoint (for bulk operations).
func (m *Instance) Endpoint() *fabric.Endpoint { return m.ep }

// Runtime exposes the underlying argo runtime.
func (m *Instance) Runtime() *argo.Runtime { return m.rt }

// Tracer returns the instance's span tracer (nil when tracing is off).
func (m *Instance) Tracer() *obs.Tracer { return m.tracer }

// Gate returns the instance's QoS gate (nil when QoS is disabled) — for
// metrics registration and test assertions.
func (m *Instance) Gate() *qos.Gate { return m.gate }

// gateExempt reports whether a service bypasses the QoS gate: the margo
// heartbeat must stay load-independent (liveness, not load) and the admin
// control plane must stay reachable precisely when the gate is shedding.
func gateExempt(service string) bool {
	return service == "margo" || service == "admin"
}

// Provider is a registered service instance.
type Provider struct {
	Service string
	ID      ProviderID
	Pool    *argo.Pool

	rpcs []string
}

// RPCs returns the provider's registered RPC names (unmangled), sorted.
func (p *Provider) RPCs() []string {
	out := append([]string(nil), p.rpcs...)
	sort.Strings(out)
	return out
}

// RegisterProvider attaches a provider. Its handlers execute in the given
// pool (nil selects the runtime's first pool). Handler map keys are bare
// RPC names; they are namespaced with the service name and provider id on
// the wire.
func (m *Instance) RegisterProvider(service string, id ProviderID, pool *argo.Pool, handlers map[string]fabric.Handler) (*Provider, error) {
	if service == "" {
		return nil, fmt.Errorf("margo: empty service name")
	}
	if len(handlers) == 0 {
		return nil, fmt.Errorf("margo: provider %s:%d has no handlers", service, id)
	}
	if pool == nil {
		pool = m.rt.Pools()[0]
	}
	key := fmt.Sprintf("%s:%d", service, id)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("margo: instance is finalized")
	}
	if _, dup := m.providers[key]; dup {
		return nil, fmt.Errorf("margo: provider %s already registered", key)
	}
	p := &Provider{Service: service, ID: id, Pool: pool}
	gate := m.gate
	if gateExempt(service) {
		gate = nil
	}
	for name, h := range handlers {
		h := h
		p.rpcs = append(p.rpcs, name)
		wire := rpcName(service, id, name)
		m.ep.Register(wire, func(ctx context.Context, req *fabric.Request) ([]byte, error) {
			// Route execution into the provider's pool; the fabric
			// goroutine blocks on the eventual, which is exactly a
			// Margo handler blocking on an ABT_eventual.
			ev := argo.NewEventual[[]byte]()
			run := func() {
				// The exec span opens once the pool picks the work up;
				// the enclosing server span opened before the push, so
				// server minus exec is the RPC's queue wait.
				exec := m.tracer.Start("exec:"+wire, obs.KindInternal, obs.SpanFromContext(ctx), "")
				exec.SetTenant(req.Identity.Tenant)
				resp, err := h(obs.ContextWithSpan(ctx, exec.Context()), req)
				exec.End(err)
				ev.Set(resp, err)
			}
			if gate != nil {
				// The gate owns admission and ordering; the pool owns
				// execution. Submit either sheds (typed error, handler
				// never queued) or enqueues, and exactly one RunNext is
				// pushed per admitted request, so the pool's item count
				// matches the WFQ backlog while the *order* items run in
				// is re-decided by tenant fairness at drain time.
				if err := gate.Submit(req.Identity, len(req.Payload), run); err != nil {
					return nil, err
				}
				if err := pool.Push(gate.RunNext); err != nil {
					return nil, err
				}
			} else if err := pool.Push(run); err != nil {
				return nil, err
			}
			return ev.Wait()
		})
	}
	m.providers[key] = p
	return p, nil
}

// Providers lists registered providers sorted by service name then id.
func (m *Instance) Providers() []*Provider {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Provider, 0, len(m.providers))
	for _, p := range m.providers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Forward calls a provider-scoped RPC on a remote instance, the analog of
// margo_provider_forward. The response is GC-owned and safe to retain.
func (m *Instance) Forward(ctx context.Context, target fabric.Address, service string, id ProviderID, rpc string, payload []byte) ([]byte, error) {
	return m.ep.Call(ctx, target, rpcName(service, id, rpc), payload)
}

// ForwardBorrow is Forward with explicit response-buffer ownership: the
// response may be a borrowed view into a pooled transport buffer and done
// (when non-nil) recycles it. See fabric.Endpoint.CallBorrow for the
// contract; callers that decode-and-copy should release, callers that keep
// borrowed views must not.
func (m *Instance) ForwardBorrow(ctx context.Context, target fabric.Address, service string, id ProviderID, rpc string, payload []byte) ([]byte, func(), error) {
	return m.ep.CallBorrow(ctx, target, rpcName(service, id, rpc), payload)
}

// Finalize shuts the instance down: endpoint first (no new RPCs), then the
// threading runtime (drain queued handlers).
func (m *Instance) Finalize() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.ep.Close()
	m.rt.Shutdown()
}
