package margo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/argo"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
)

var addrSeq atomic.Int64

func newInstance(t *testing.T, cfg Config) *Instance {
	t.Helper()
	if cfg.Address == "" {
		cfg.Address = fabric.Address(fmt.Sprintf("inproc://margo-%d", addrSeq.Add(1)))
	}
	m, err := Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Finalize)
	return m
}

func TestProviderRoundTrip(t *testing.T) {
	server := newInstance(t, Config{RPCXStreams: 4})
	client := newInstance(t, Config{})

	_, err := server.RegisterProvider("kv", 1, nil, map[string]fabric.Handler{
		"put": func(_ context.Context, req *fabric.Request) ([]byte, error) {
			return append([]byte("stored:"), req.Payload...), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Forward(context.Background(), server.Addr(), "kv", 1, "put", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "stored:x" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestProviderIDsAreIsolated(t *testing.T) {
	server := newInstance(t, Config{RPCXStreams: 2})
	client := newInstance(t, Config{})
	for id := ProviderID(0); id < 3; id++ {
		id := id
		_, err := server.RegisterProvider("kv", id, nil, map[string]fabric.Handler{
			"who": func(context.Context, *fabric.Request) ([]byte, error) {
				return []byte(fmt.Sprintf("provider-%d", id)), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := ProviderID(0); id < 3; id++ {
		resp, err := client.Forward(context.Background(), server.Addr(), "kv", id, "who", nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("provider-%d", id); string(resp) != want {
			t.Fatalf("id %d answered %q", id, resp)
		}
	}
	// Unregistered provider id fails.
	if _, err := client.Forward(context.Background(), server.Addr(), "kv", 9, "who", nil); err == nil {
		t.Fatal("unknown provider id should fail")
	}
}

func TestHandlersRunInAssignedPool(t *testing.T) {
	cfg := argo.Config{
		Pools: []argo.PoolConfig{{Name: "p0"}, {Name: "p1"}},
		XStreams: []argo.XStreamConfig{
			{Name: "x0", Pools: []string{"p0"}},
			{Name: "x1", Pools: []string{"p1"}},
		},
	}
	server := newInstance(t, Config{Argobots: cfg})
	client := newInstance(t, Config{})

	pool1 := server.Runtime().Pool("p1")
	if _, err := server.RegisterProvider("svc", 0, pool1, map[string]fabric.Handler{
		"noop": func(context.Context, *fabric.Request) ([]byte, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := client.Forward(context.Background(), server.Addr(), "svc", 0, "noop", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool1.Stats().Popped; got != n {
		t.Fatalf("pool p1 ran %d tasks, want %d", got, n)
	}
	if got := server.Runtime().Pool("p0").Stats().Popped; got != 0 {
		t.Fatalf("pool p0 ran %d tasks, want 0", got)
	}
}

func TestRegistrationErrors(t *testing.T) {
	m := newInstance(t, Config{})
	h := map[string]fabric.Handler{"x": func(context.Context, *fabric.Request) ([]byte, error) { return nil, nil }}
	if _, err := m.RegisterProvider("", 0, nil, h); err == nil {
		t.Error("empty service should fail")
	}
	if _, err := m.RegisterProvider("s", 0, nil, nil); err == nil {
		t.Error("no handlers should fail")
	}
	if _, err := m.RegisterProvider("s", 0, nil, h); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterProvider("s", 0, nil, h); err == nil {
		t.Error("duplicate provider should fail")
	}
	if _, err := m.RegisterProvider("s", 1, nil, h); err != nil {
		t.Errorf("same service different id should work: %v", err)
	}
}

func TestProvidersListing(t *testing.T) {
	m := newInstance(t, Config{})
	h := map[string]fabric.Handler{
		"get": func(context.Context, *fabric.Request) ([]byte, error) { return nil, nil },
		"put": func(context.Context, *fabric.Request) ([]byte, error) { return nil, nil },
	}
	m.RegisterProvider("zeta", 0, nil, h)
	m.RegisterProvider("alpha", 2, nil, h)
	m.RegisterProvider("alpha", 1, nil, h)
	ps := m.Providers()
	if len(ps) != 3 {
		t.Fatalf("providers = %d", len(ps))
	}
	if ps[0].Service != "alpha" || ps[0].ID != 1 || ps[2].Service != "zeta" {
		t.Fatalf("unsorted: %+v", ps)
	}
	rpcs := ps[0].RPCs()
	if len(rpcs) != 2 || rpcs[0] != "get" || rpcs[1] != "put" {
		t.Fatalf("rpcs = %v", rpcs)
	}
}

func TestConcurrentForwards(t *testing.T) {
	server := newInstance(t, Config{RPCXStreams: 8})
	client := newInstance(t, Config{})
	var served atomic.Int64
	server.RegisterProvider("kv", 0, nil, map[string]fabric.Handler{
		"inc": func(context.Context, *fabric.Request) ([]byte, error) {
			served.Add(1)
			return nil, nil
		},
	})
	var wg sync.WaitGroup
	const n = 500
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Forward(context.Background(), server.Addr(), "kv", 0, "inc", nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if served.Load() != n {
		t.Fatalf("served %d, want %d", served.Load(), n)
	}
}

func TestFinalizeIdempotentAndBlocksRegistration(t *testing.T) {
	m := newInstance(t, Config{})
	m.Finalize()
	m.Finalize()
	h := map[string]fabric.Handler{"x": func(context.Context, *fabric.Request) ([]byte, error) { return nil, nil }}
	if _, err := m.RegisterProvider("s", 0, nil, h); err == nil {
		t.Fatal("registration after finalize should fail")
	}
}

func TestTCPInstance(t *testing.T) {
	server := newInstance(t, Config{Address: "tcp://127.0.0.1:0", RPCXStreams: 2})
	client := newInstance(t, Config{Address: "tcp://127.0.0.1:0"})
	server.RegisterProvider("kv", 0, nil, map[string]fabric.Handler{
		"echo": func(_ context.Context, req *fabric.Request) ([]byte, error) { return req.Payload, nil },
	})
	resp, err := client.Forward(context.Background(), server.Addr(), "kv", 0, "echo", []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "over tcp" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestBuiltinPing(t *testing.T) {
	server := newInstance(t, Config{})
	client := newInstance(t, Config{})
	if err := client.Ping(context.Background(), server.Addr()); err != nil {
		t.Fatalf("ping live server: %v", err)
	}
	// A finalized server no longer answers.
	dead := newInstance(t, Config{})
	addr := dead.Addr()
	dead.Finalize()
	if err := client.Ping(context.Background(), addr); err == nil {
		t.Fatal("ping to finalized server should fail")
	}
	// Self-ping works too (a server can probe itself).
	if err := server.Ping(context.Background(), server.Addr()); err != nil {
		t.Fatalf("self ping: %v", err)
	}
}
