package dataloader

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"

	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/h5lite"
)

// Export is the DataLoader's inverse: it walks a HEPnOS dataset and writes
// its events' products back into h5lite files, one file per (run, subrun) —
// the archival step a production workflow needs once an analysis pass has
// produced new products (§VI anticipates workflows writing results back
// into the store).
//
// The binding's struct fields become the member columns, exactly the
// layout InspectFile infers, so export → ingest round-trips.
type Exporter struct {
	DS *core.DataStore
	// Label is the product label to export.
	Label string
	// PageSize tunes the event cursor (0 = default).
	PageSize int
}

// ExportStats summarizes an export.
type ExportStats struct {
	Files  int
	Events int
	Rows   int
}

// ExportDataSet writes every subrun of every run into dir as
// "<prefix>-<run>-<subrun>.h5l" and returns the written paths.
func (e *Exporter) ExportDataSet(ctx context.Context, dataset *core.DataSet, b *Binding, dir, prefix string) ([]string, ExportStats, error) {
	var (
		paths []string
		st    ExportStats
	)
	label := e.Label
	if label == "" {
		label = "h5"
	}
	runs, err := dataset.Runs(ctx)
	if err != nil {
		return nil, st, err
	}
	for _, rn := range runs {
		run, err := dataset.Run(ctx, rn)
		if err != nil {
			return nil, st, err
		}
		subs, err := run.SubRuns(ctx)
		if err != nil {
			return nil, st, err
		}
		for _, sn := range subs {
			sr, err := run.SubRun(ctx, sn)
			if err != nil {
				return nil, st, err
			}
			path := filepath.Join(dir, fmt.Sprintf("%s-%06d-%04d.h5l", prefix, rn, sn))
			n, rows, err := e.exportSubRun(ctx, sr, b, label, path)
			if err != nil {
				return nil, st, fmt.Errorf("dataloader: export run %d subrun %d: %w", rn, sn, err)
			}
			if n == 0 {
				continue // no rows: no file
			}
			paths = append(paths, path)
			st.Files++
			st.Events += n
			st.Rows += rows
		}
	}
	return paths, st, nil
}

// exportSubRun streams one subrun's events through the cursor (with
// product prefetching) into column builders.
func (e *Exporter) exportSubRun(ctx context.Context, sr *core.SubRun, b *Binding, label, path string) (events, rows int, err error) {
	sel := core.ProductSelector{Label: label, Type: "vector<" + b.typ.Name() + ">"}
	cur := sr.EventCursor(ctx, e.PageSize, sel)

	var (
		runCol, subCol, evCol []uint64
		members               = make([][]float64, len(b.Schema.Members))
	)
	slicePtr := reflect.New(reflect.SliceOf(b.typ))
	for cur.Next() {
		ev := cur.Event()
		slicePtr.Elem().SetZero()
		if err := ev.Load(ctx, label, slicePtr.Interface()); err != nil {
			// An event without the product contributes no rows.
			continue
		}
		items := slicePtr.Elem()
		if items.Len() == 0 {
			continue
		}
		id := ev.ID()
		events++
		for i := 0; i < items.Len(); i++ {
			rows++
			runCol = append(runCol, id.Run)
			subCol = append(subCol, id.SubRun)
			evCol = append(evCol, id.Event)
			item := items.Index(i)
			for mi := range b.Schema.Members {
				f := item.Field(b.fieldIdx[mi])
				var v float64
				switch f.Kind() {
				case reflect.Float32, reflect.Float64:
					v = f.Float()
				case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
					v = float64(f.Int())
				default:
					v = float64(f.Uint())
				}
				members[mi] = append(members[mi], v)
			}
		}
	}
	if err := cur.Err(); err != nil {
		return 0, 0, err
	}
	if rows == 0 {
		return 0, 0, nil
	}

	w := h5lite.NewWriter()
	group := "export/" + b.typ.Name()
	if b.Schema.Group != "" {
		group = b.Schema.Group
	}
	if err := w.AddColumn(group, "run", runCol); err != nil {
		return 0, 0, err
	}
	if err := w.AddColumn(group, "subrun", subCol); err != nil {
		return 0, 0, err
	}
	if err := w.AddColumn(group, "evt", evCol); err != nil {
		return 0, 0, err
	}
	for mi, m := range b.Schema.Members {
		col, err := narrowColumn(m.DType, members[mi])
		if err != nil {
			return 0, 0, err
		}
		if err := w.AddColumn(group, m.Column, col); err != nil {
			return 0, 0, err
		}
	}
	if err := w.WriteFile(path); err != nil {
		return 0, 0, err
	}
	return events, rows, nil
}

// narrowColumn converts the float64 staging column back to the schema's
// column type.
func narrowColumn(dt h5lite.DType, vals []float64) (any, error) {
	switch dt {
	case h5lite.Float32:
		out := make([]float32, len(vals))
		for i, v := range vals {
			out[i] = float32(v)
		}
		return out, nil
	case h5lite.Float64:
		return append([]float64(nil), vals...), nil
	case h5lite.Int32:
		out := make([]int32, len(vals))
		for i, v := range vals {
			out[i] = int32(v)
		}
		return out, nil
	case h5lite.Int64:
		out := make([]int64, len(vals))
		for i, v := range vals {
			out[i] = int64(v)
		}
		return out, nil
	case h5lite.Uint32:
		out := make([]uint32, len(vals))
		for i, v := range vals {
			out[i] = uint32(v)
		}
		return out, nil
	case h5lite.Uint64:
		out := make([]uint64, len(vals))
		for i, v := range vals {
			out[i] = uint64(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("dataloader: cannot export column type %q", dt)
	}
}
