package dataloader

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/h5lite"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
)

var seq atomic.Int64

func newStore(t *testing.T) *core.DataStore {
	t.Helper()
	d, err := bedrock.Deploy(bedrock.DeploySpec{
		Servers:             2,
		ProvidersPerServer:  2,
		EventDBsPerServer:   4,
		ProductDBsPerServer: 4,
		NamePrefix:          fmt.Sprintf("loader-%d", seq.Add(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	ds, err := core.Connect(context.Background(), core.ClientConfig{Group: d.Group})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ds.Close)
	return ds
}

func sampleFiles(t *testing.T, n int) []string {
	t.Helper()
	gen := nova.NewGenerator(nova.GenParams{Seed: 11, MeanEventsPerFile: 40, FilesPerSubRun: 2})
	paths, err := nova.GenerateSample(t.TempDir(), gen, n)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestInspectFile(t *testing.T) {
	paths := sampleFiles(t, 1)
	schemas, err := InspectFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 1 {
		t.Fatalf("schemas = %d", len(schemas))
	}
	cs := schemas[0]
	if cs.Class != nova.SliceClass || cs.Group != nova.SliceGroup {
		t.Fatalf("class = %q group = %q", cs.Class, cs.Group)
	}
	// 18 columns minus run/subrun/evt = 15 member variables.
	if len(cs.Members) != 15 {
		t.Fatalf("members = %d: %v", len(cs.Members), cs.Members)
	}
	for _, m := range cs.Members {
		if coordColumns[m.Column] {
			t.Fatalf("coordinate column %q leaked into members", m.Column)
		}
	}
}

func TestGenerateGoSource(t *testing.T) {
	paths := sampleFiles(t, 1)
	schemas, _ := InspectFile(paths[0])
	src := GenerateGoSource(schemas[0])
	for _, want := range []string{"type NovaSlice struct {", "CalE float32", "NHit int32", "SliceIdx uint32"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
}

func TestBindErrors(t *testing.T) {
	paths := sampleFiles(t, 1)
	schemas, _ := InspectFile(paths[0])
	if _, err := Bind(42, schemas[0]); err == nil {
		t.Error("non-struct example should fail")
	}
	type missing struct{ CalE float32 }
	if _, err := Bind(missing{}, schemas[0]); err == nil {
		t.Error("struct missing columns should fail")
	}
	type badType struct {
		nova.Slice
		// shadow a column with a non-numeric field
	}
	_ = badType{}
	type wrongKind struct {
		CalE string
	}
	cs := schemas[0]
	cs.Members = []Member{{Column: "calE"}}
	if _, err := Bind(wrongKind{}, cs); err == nil {
		t.Error("non-numeric field should fail")
	}
}

func TestBindAndReadEvents(t *testing.T) {
	paths := sampleFiles(t, 1)
	schemas, _ := InspectFile(paths[0])
	b, err := Bind(nova.Slice{}, schemas[0])
	if err != nil {
		t.Fatal(err)
	}
	f, err := h5lite.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := b.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with nova.ReadFile.
	want, err := nova.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(want) {
		t.Fatalf("events = %d, want %d", len(evs), len(want))
	}
	for i := range want {
		rows := evs[i].Rows.([]nova.Slice)
		if len(rows) != len(want[i].Slices) {
			t.Fatalf("event %d rows = %d, want %d", i, len(rows), len(want[i].Slices))
		}
		for j := range rows {
			if rows[j] != want[i].Slices[j] {
				t.Fatalf("event %d row %d: %+v != %+v", i, j, rows[j], want[i].Slices[j])
			}
		}
	}
}

func TestIngestEndToEnd(t *testing.T) {
	ds := newStore(t)
	ctx := context.Background()
	paths := sampleFiles(t, 6)
	dataset, err := ds.CreateDataSet(ctx, "fermilab/nova")
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := InspectFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(nova.Slice{}, schemas[0])
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{DS: ds, Label: "slices", Parallelism: 3}
	st, err := loader.IngestFiles(ctx, dataset, b, paths)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 6 || st.Events == 0 || st.Rows == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Every file event is now in HEPnOS with its product.
	wantEvents := 0
	for _, p := range paths {
		evs, _ := nova.ReadFile(p)
		wantEvents += len(evs)
		for _, ev := range evs {
			run, err := dataset.Run(ctx, ev.Run)
			if err != nil {
				t.Fatalf("run %d: %v", ev.Run, err)
			}
			sr, err := run.SubRun(ctx, ev.SubRun)
			if err != nil {
				t.Fatalf("subrun %d: %v", ev.SubRun, err)
			}
			hev, err := sr.Event(ctx, ev.Event)
			if err != nil {
				t.Fatalf("event %d: %v", ev.Event, err)
			}
			var slices []nova.Slice
			if err := hev.Load(ctx, "slices", &slices); err != nil {
				t.Fatalf("load product: %v", err)
			}
			if len(slices) != len(ev.Slices) {
				t.Fatalf("event %v: %d slices, want %d", ev.Event, len(slices), len(ev.Slices))
			}
		}
	}
	if st.Events != wantEvents {
		t.Fatalf("ingested %d events, files hold %d", st.Events, wantEvents)
	}
}

func TestIngestBadFile(t *testing.T) {
	ds := newStore(t)
	ctx := context.Background()
	dataset, _ := ds.CreateDataSet(ctx, "bad")
	schemas, _ := InspectFile(sampleFiles(t, 1)[0])
	b, _ := Bind(nova.Slice{}, schemas[0])
	loader := &Loader{DS: ds}
	if _, err := loader.IngestFiles(ctx, dataset, b, []string{"/does/not/exist"}); err == nil {
		t.Fatal("missing file should fail")
	}
}

// TestExportRoundTrip: ingest files, export the dataset back to h5lite,
// and verify the exported files reproduce the identical selection result —
// the archival inverse of HDF2HEPnOS.
func TestExportRoundTrip(t *testing.T) {
	ds := newStore(t)
	ctx := context.Background()
	paths := sampleFiles(t, 4)
	dataset, err := ds.CreateDataSet(ctx, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := InspectFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	binding, err := Bind(nova.Slice{}, schemas[0])
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{DS: ds, Label: "slices", Parallelism: 2}
	inStats, err := loader.IngestFiles(ctx, dataset, binding, paths)
	if err != nil {
		t.Fatal(err)
	}

	outDir := t.TempDir()
	exporter := &Exporter{DS: ds, Label: "slices"}
	outPaths, exStats, err := exporter.ExportDataSet(ctx, dataset, binding, outDir, "export")
	if err != nil {
		t.Fatal(err)
	}
	if exStats.Events != inStats.Events || exStats.Rows != inStats.Rows {
		t.Fatalf("export stats %+v != ingest stats %+v", exStats, inStats)
	}
	if len(outPaths) == 0 {
		t.Fatal("no files exported")
	}

	// The exported files carry the same schema...
	outSchemas, err := InspectFile(outPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(outSchemas) != 1 || len(outSchemas[0].Members) != len(schemas[0].Members) {
		t.Fatalf("export schema mismatch: %+v", outSchemas)
	}
	// ...and the same physics: selection over original and exported files
	// must agree slice for slice.
	select_ := func(files []string) map[string]bool {
		out := map[string]bool{}
		for _, p := range files {
			events, err := nova.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			for i := range events {
				for _, ref := range nova.SelectEvent(&events[i]) {
					out[ref.String()] = true
				}
			}
		}
		return out
	}
	orig, exported := select_(paths), select_(outPaths)
	if len(orig) != len(exported) {
		t.Fatalf("selection differs: %d vs %d accepted", len(orig), len(exported))
	}
	for ref := range orig {
		if !exported[ref] {
			t.Fatalf("accepted slice %s missing after round trip", ref)
		}
	}
}
