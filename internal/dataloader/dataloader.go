// Package dataloader is the Go analog of HDF2HEPnOS and its generated
// DataLoader (§III-B of the paper). HDF2HEPnOS analyzes the structure of an
// HDF5 file, deduces the stored class name and its member variables, and
// generates the C++ class plus load/store functions. Go has reflection, so
// instead of emitting code to compile, Bind maps the inferred schema onto a
// user-provided struct type at runtime — and GenerateGoSource still emits
// the equivalent Go type definition for tooling parity.
//
// The Loader then ingests files in parallel: for every (run, subrun, event)
// row group it creates the corresponding HEPnOS containers and stores the
// rows as one product per event, using WriteBatch to group updates by
// target database. Ingest is the only step of a HEPnOS workflow whose
// parallelism is bounded by the file count.
package dataloader

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/internal/asyncengine"
	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/h5lite"
)

// Coordinate column names recognized as run/subrun/event numbers.
var coordColumns = map[string]bool{"run": true, "subrun": true, "evt": true, "event": true}

// Member describes one inferred member variable.
type Member struct {
	Column string
	DType  h5lite.DType
}

// ClassSchema is the inferred shape of one leaf group.
type ClassSchema struct {
	Group   string // full group path
	Class   string // last path component
	Rows    int
	Members []Member // non-coordinate columns, sorted by name
}

// InspectFile infers the schema of every leaf group in an h5lite file that
// has the run/subrun/event coordinate columns.
func InspectFile(path string) ([]ClassSchema, error) {
	f, err := h5lite.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []ClassSchema
	for _, g := range f.Groups() {
		if g.Column("run") == nil || g.Column("subrun") == nil ||
			(g.Column("evt") == nil && g.Column("event") == nil) {
			continue // not an event-indexed class group
		}
		cs := ClassSchema{Group: g.Path, Class: g.ClassName(), Rows: g.Rows()}
		for _, c := range g.Columns {
			if coordColumns[c.Name] {
				continue
			}
			cs.Members = append(cs.Members, Member{Column: c.Name, DType: c.DType})
		}
		sort.Slice(cs.Members, func(i, j int) bool { return cs.Members[i].Column < cs.Members[j].Column })
		out = append(out, cs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataloader: %s has no event-indexed groups", path)
	}
	return out, nil
}

// GenerateGoSource renders the Go struct definition equivalent to the
// schema — the analog of the C++ class HDF2HEPnOS generates.
func GenerateGoSource(cs ClassSchema) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s was generated from h5lite group %q.\n", cs.Class, cs.Group)
	fmt.Fprintf(&b, "type %s struct {\n", cs.Class)
	for _, m := range cs.Members {
		goType := map[h5lite.DType]string{
			h5lite.Float32: "float32", h5lite.Float64: "float64",
			h5lite.Int32: "int32", h5lite.Int64: "int64",
			h5lite.Uint32: "uint32", h5lite.Uint64: "uint64",
		}[m.DType]
		fmt.Fprintf(&b, "\t%s %s\n", exportName(m.Column), goType)
	}
	b.WriteString("}\n")
	return b.String()
}

// exportName upper-cases the first rune so the field is exported.
func exportName(col string) string {
	if col == "" {
		return col
	}
	return strings.ToUpper(col[:1]) + col[1:]
}

// Binding maps schema columns onto the fields of a concrete struct type.
type Binding struct {
	Schema ClassSchema
	typ    reflect.Type
	// fieldIdx[i] is the struct field index for Members[i], or -1.
	fieldIdx []int
}

// Bind matches the schema's columns to example's struct fields by
// case-insensitive name. Every column must find a field; extra struct
// fields are left at their zero values.
func Bind(example any, cs ClassSchema) (*Binding, error) {
	t := reflect.TypeOf(example)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("dataloader: Bind needs a struct example, got %T", example)
	}
	byLower := map[string]int{}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		byLower[strings.ToLower(f.Name)] = i
	}
	b := &Binding{Schema: cs, typ: t, fieldIdx: make([]int, len(cs.Members))}
	for i, m := range cs.Members {
		idx, ok := byLower[strings.ToLower(m.Column)]
		if !ok {
			return nil, fmt.Errorf("dataloader: no field in %s for column %q", t.Name(), m.Column)
		}
		switch t.Field(idx).Type.Kind() {
		case reflect.Float32, reflect.Float64,
			reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int,
			reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uint:
		default:
			return nil, fmt.Errorf("dataloader: field %s.%s has non-numeric type %s",
				t.Name(), t.Field(idx).Name, t.Field(idx).Type)
		}
		b.fieldIdx[i] = idx
	}
	return b, nil
}

// EventRows is the decoded content of one event: a slice (reflect value of
// []T) of member structs.
type EventRows struct {
	Run, SubRun, Event uint64
	// Rows is a []T as any.
	Rows any
	// Count is len(Rows).
	Count int
}

// ReadEvents loads the group's rows from the file and groups consecutive
// rows by (run, subrun, event), materializing each group as a []T.
func (b *Binding) ReadEvents(f *h5lite.File) ([]EventRows, error) {
	runs, err := f.ReadUint64(b.Schema.Group, "run")
	if err != nil {
		return nil, err
	}
	subruns, err := f.ReadUint64(b.Schema.Group, "subrun")
	if err != nil {
		return nil, err
	}
	evCol := "evt"
	if g, _ := f.Group(b.Schema.Group); g != nil && g.Column("evt") == nil {
		evCol = "event"
	}
	events, err := f.ReadUint64(b.Schema.Group, evCol)
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, len(b.Schema.Members))
	for i, m := range b.Schema.Members {
		if cols[i], err = f.ReadFloat64(b.Schema.Group, m.Column); err != nil {
			return nil, err
		}
	}

	var out []EventRows
	sliceType := reflect.SliceOf(b.typ)
	var cur reflect.Value
	flushTo := -1
	for row := 0; row < len(runs); row++ {
		newEvent := flushTo < 0 ||
			out[flushTo].Run != runs[row] ||
			out[flushTo].SubRun != subruns[row] ||
			out[flushTo].Event != events[row]
		if newEvent {
			if flushTo >= 0 {
				out[flushTo].Rows = cur.Interface()
				out[flushTo].Count = cur.Len()
			}
			out = append(out, EventRows{Run: runs[row], SubRun: subruns[row], Event: events[row]})
			flushTo = len(out) - 1
			cur = reflect.MakeSlice(sliceType, 0, 8)
		}
		item := reflect.New(b.typ).Elem()
		for i := range b.Schema.Members {
			field := item.Field(b.fieldIdx[i])
			v := cols[i][row]
			switch field.Kind() {
			case reflect.Float32, reflect.Float64:
				field.SetFloat(v)
			case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
				field.SetInt(int64(v))
			default:
				field.SetUint(uint64(v))
			}
		}
		cur = reflect.Append(cur, item)
	}
	if flushTo >= 0 {
		out[flushTo].Rows = cur.Interface()
		out[flushTo].Count = cur.Len()
	}
	return out, nil
}

// Loader ingests files into a HEPnOS dataset.
type Loader struct {
	DS *core.DataStore
	// Label is the product label used for every stored product.
	Label string
	// BatchSize bounds the WriteBatch before an automatic flush.
	BatchSize int
	// Parallelism is the number of concurrent file ingests.
	Parallelism int
}

// IngestStats summarizes an ingest.
type IngestStats struct {
	Files    int
	Events   int
	Products int
	Rows     int
}

// IngestFile loads one file's events into the dataset through the binding.
func (l *Loader) IngestFile(ctx context.Context, dataset *core.DataSet, b *Binding, path string) (IngestStats, error) {
	var st IngestStats
	f, err := h5lite.Open(path)
	if err != nil {
		return st, err
	}
	evs, err := b.ReadEvents(f)
	f.Close()
	if err != nil {
		return st, err
	}
	// Async batch: flushes overlap with decoding the next events, and
	// degrade to synchronous flushes when the engine is disabled.
	batch := l.BatchSize
	if batch <= 0 {
		batch = 4096
	}
	wb := l.DS.NewAsyncWriteBatch(batch)
	label := l.Label
	if label == "" {
		label = "h5"
	}
	// Cache run/subrun handles; files usually hold one subrun.
	type srKey struct{ run, sub uint64 }
	runs := map[uint64]*core.Run{}
	subs := map[srKey]*core.SubRun{}
	for _, er := range evs {
		run := runs[er.Run]
		if run == nil {
			if run, err = wb.CreateRun(ctx, dataset, er.Run); err != nil {
				return st, err
			}
			runs[er.Run] = run
		}
		sk := srKey{er.Run, er.SubRun}
		sub := subs[sk]
		if sub == nil {
			if sub, err = wb.CreateSubRun(ctx, run, er.SubRun); err != nil {
				return st, err
			}
			subs[sk] = sub
		}
		ev, err := wb.CreateEvent(ctx, sub, er.Event)
		if err != nil {
			return st, err
		}
		if err := wb.Store(ctx, ev, label, er.Rows); err != nil {
			return st, err
		}
		st.Events++
		st.Products++
		st.Rows += er.Count
	}
	// Close is the §II-D barrier: it drains every asynchronous flush and
	// surfaces their errors.
	if err := wb.Close(ctx); err != nil {
		return st, err
	}
	st.Files = 1
	return st, nil
}

// IngestFiles ingests many files concurrently — one engine task per file
// on the AsyncEngine's ingest pool, at most Parallelism in flight — and
// accumulates statistics. The first error cancels the remaining files.
// With a disabled engine the files are ingested sequentially.
func (l *Loader) IngestFiles(ctx context.Context, dataset *core.DataSet, b *Binding, paths []string) (IngestStats, error) {
	workers := l.Parallelism
	if workers <= 0 {
		workers = 4
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	var (
		mu    sync.Mutex
		total IngestStats
	)
	g := l.DS.Engine().NewGroup(ctx, asyncengine.PoolIngest, workers)
	for _, p := range paths {
		path := p
		g.Go(func(tctx context.Context) error {
			st, err := l.IngestFile(tctx, dataset, b, path)
			mu.Lock()
			total.Files += st.Files
			total.Events += st.Events
			total.Products += st.Products
			total.Rows += st.Rows
			mu.Unlock()
			if err != nil {
				return fmt.Errorf("dataloader: ingest %s: %w", path, err)
			}
			return nil
		})
	}
	return total, g.Wait()
}
