package simexp

import (
	"math"
	"testing"
)

// These tests assert the *shape claims* of §IV — who wins, where scaling
// flattens, efficiency bands — which are the reproduction target. They run
// the same code paths the paperbench tool prints.

func meanThroughput(f func(seed uint64) SimResult, trials int) float64 {
	var sum float64
	for s := 0; s < trials; s++ {
		sum += f(uint64(s) + 1).Throughput
	}
	return sum / float64(trials)
}

func TestHEPnOSBeatsFileBasedEverywhere(t *testing.T) {
	m := Theta()
	w := PaperWorkloads()[2]
	for _, n := range Fig2Nodes {
		fb := meanThroughput(func(s uint64) SimResult { return SimulateFileBased(m, n, w, s) }, 3)
		mem := meanThroughput(func(s uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendMap), s)
		}, 3)
		lsm := meanThroughput(func(s uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendLSM), s)
		}, 3)
		// "The performance of the HEPnOS based workflow is superior across
		// all the different number of nodes used" (Fig. 2 caption).
		if mem <= fb || lsm <= fb {
			t.Fatalf("nodes=%d: file-based %.0f not below hepnos mem %.0f / lsm %.0f", n, fb, mem, lsm)
		}
	}
}

func TestBackendsTieSmallDivergeLarge(t *testing.T) {
	m := Theta()
	w := PaperWorkloads()[2]
	ratio := func(n int) float64 {
		mem := meanThroughput(func(s uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendMap), s)
		}, 5)
		lsm := meanThroughput(func(s uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendLSM), s)
		}, 5)
		return mem / lsm
	}
	// "At the smaller node counts use of the RocksDB backend does not
	// cause any inefficiency" — within 10% at 16 and 32 nodes.
	for _, n := range []int{16, 32} {
		if r := ratio(n); r > 1.10 {
			t.Fatalf("nodes=%d: mem/lsm = %.2f, want ≈1", n, r)
		}
	}
	// "At higher node counts the in-memory back-end achieves up to twice
	// the throughput" — between 1.4x and 3x at 256 nodes.
	if r := ratio(256); r < 1.4 || r > 3.0 {
		t.Fatalf("nodes=256: mem/lsm = %.2f, want ~2", r)
	}
	// The gap must grow monotonically in allocation size.
	if ratio(64) >= ratio(256) {
		t.Fatal("backend gap should widen with scale")
	}
}

func TestFileBasedFlattensPast64Nodes(t *testing.T) {
	m := Theta()
	w := PaperWorkloads()[2]
	thr := map[int]float64{}
	for _, n := range Fig2Nodes {
		thr[n] = meanThroughput(func(s uint64) SimResult { return SimulateFileBased(m, n, w, s) }, 3)
	}
	// Decent scaling 16 -> 64...
	if thr[64] < 1.8*thr[16] {
		t.Fatalf("file-based should scale below 64 nodes: %v", thr)
	}
	// ...then flat: beyond 64 nodes the cores outnumber the files and the
	// file system caps the read rate.
	if thr[256] > 1.25*thr[64] {
		t.Fatalf("file-based should flatten past 64 nodes: 64=%.0f 256=%.0f", thr[64], thr[256])
	}
}

func TestInMemoryEfficiencyAnchor(t *testing.T) {
	// "With the in-memory backend the HEPnOS based workflow achieves 85%
	// strong scaling efficiency at 128 nodes." Accept 75–97%.
	m := Theta()
	series := Fig2(m, 5)
	rows := StrongScalingTable(series)
	for _, r := range rows {
		if r.Workflow == "hepnos/in-memory" && r.Nodes == 128 {
			if r.Efficiency < 0.75 || r.Efficiency > 0.97 {
				t.Fatalf("in-memory efficiency at 128 nodes = %.1f%%, want ≈85%%", 100*r.Efficiency)
			}
			return
		}
	}
	t.Fatal("no in-memory 128-node row")
}

func TestFileBasedStarvedOnSmallDataset(t *testing.T) {
	m := Theta()
	small := PaperWorkloads()[0] // 1929 files on 128 nodes = 8192 cores
	r := SimulateFileBased(m, 128, small, 7)
	// "For the 1929 file sample ... only 24% of the cores are busy."
	busyFrac := r.Detail["busy_processes"] / r.Detail["processes"]
	if math.Abs(busyFrac-0.235) > 0.02 {
		t.Fatalf("busy-core fraction = %.1f%%, want ≈24%%", 100*busyFrac)
	}
	// Fig. 3: file-based throughput grows with dataset size at fixed
	// allocation; HEPnOS is far less sensitive.
	large := PaperWorkloads()[2]
	rLarge := SimulateFileBased(m, 128, large, 7)
	if rLarge.Throughput < 1.5*r.Throughput {
		t.Fatalf("file-based should improve with dataset size: %.0f vs %.0f",
			r.Throughput, rLarge.Throughput)
	}
	hSmall := SimulateHEPnOS(m, 128, small, DefaultHEPnOSParams(BackendMap), 7)
	hLarge := SimulateHEPnOS(m, 128, large, DefaultHEPnOSParams(BackendMap), 7)
	if hLarge.Throughput > 2*hSmall.Throughput {
		t.Fatalf("hepnos should be much less dataset-size sensitive: %.0f vs %.0f",
			hSmall.Throughput, hLarge.Throughput)
	}
}

func TestAblationDirections(t *testing.T) {
	m := Theta()
	rows := Ablation(m, 3)
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	paper := byName["paper (16384/64/prefetch)"]
	if paper.Throughput == 0 {
		t.Fatal("missing paper row")
	}
	// Coarse work batches hurt load balancing.
	if byName["coarse work batches"].Throughput >= paper.Throughput {
		t.Fatal("coarse work batches should lose to the paper's tuning")
	}
	// Disabling prefetch costs per-event round trips.
	if byName["no prefetching"].Throughput >= paper.Throughput {
		t.Fatal("no-prefetch should lose to the paper's tuning")
	}
}

func TestSeriesPlumbing(t *testing.T) {
	m := Theta()
	f2 := Fig2(m, 2)
	if len(f2) != 3 {
		t.Fatalf("fig2 series = %d", len(f2))
	}
	for _, s := range f2 {
		if len(s.Points) != len(Fig2Nodes) {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mean <= 0 || len(p.Trials) != 2 {
				t.Fatalf("series %q point %+v", s.Label, p)
			}
		}
	}
	f3 := Fig3(m, 2)
	if len(f3) != 3 || len(f3[0].Points) != 3 {
		t.Fatalf("fig3 shape: %d series", len(f3))
	}
	out := FormatSeries("T", "x", f2)
	if len(out) == 0 || out[0] != '=' {
		t.Fatalf("format output: %q", out)
	}
	// Determinism: same trials → same numbers.
	again := Fig2(m, 2)
	for i := range f2 {
		for j := range f2[i].Points {
			if f2[i].Points[j].Mean != again[i].Points[j].Mean {
				t.Fatal("Fig2 is not deterministic for fixed trials")
			}
		}
	}
}

func TestSimResultEdgeCases(t *testing.T) {
	m := Theta()
	if r := SimulateFileBased(m, 0, Workload{}, 1); r.Throughput != 0 {
		t.Fatal("degenerate file-based run should yield zero throughput")
	}
	// Tiny workloads still work.
	r := SimulateHEPnOS(m, 16, Workload{Files: 1, Events: 100}, DefaultHEPnOSParams(BackendMap), 1)
	if r.Throughput <= 0 {
		t.Fatalf("tiny workload: %+v", r)
	}
	if r.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestWeakScalingNearLinearForHEPnOS(t *testing.T) {
	m := Theta()
	series := WeakScaling(m, 3)
	var mem, fb Series
	for _, s := range series {
		switch s.Label {
		case "hepnos/in-memory":
			mem = s
		case "file-based":
			fb = s
		}
	}
	// Per-node throughput stays within 25% of the 16-node baseline for
	// the in-memory backend: the abstract's weak-scalability claim.
	base := mem.Points[0].Mean / mem.Points[0].X
	for _, p := range mem.Points {
		perNode := p.Mean / p.X
		if perNode < 0.75*base || perNode > 1.25*base {
			t.Fatalf("weak scaling broke at %v nodes: %.0f vs base %.0f slices/s/node",
				p.X, perNode, base)
		}
	}
	// The file-based workflow saturates the shared file system instead.
	last := fb.Points[len(fb.Points)-1]
	if last.Mean/last.X > 0.5*(fb.Points[0].Mean/fb.Points[0].X) {
		t.Fatalf("file-based weak scaling should degrade: %.0f/node at %v nodes", last.Mean/last.X, last.X)
	}
}

func TestIngestIsFileAndPFSConstrained(t *testing.T) {
	// §III-B: the DataLoader is "the only step whose scalability is
	// constrained by the number of files". Ingest throughput must
	// saturate early (PFS + file granularity) while the selection phase
	// keeps scaling over the same node range.
	m := Theta()
	s := IngestScaling(m, 3)
	first, last := s.Points[0].Mean, s.Points[len(s.Points)-1].Mean
	if last > 2.2*first {
		t.Fatalf("ingest should saturate: %.0f -> %.0f events/s", first, last)
	}
	w := PaperWorkloads()[2]
	sel16 := meanThroughput(func(seed uint64) SimResult {
		return SimulateHEPnOS(m, 16, w, DefaultHEPnOSParams(BackendMap), seed)
	}, 3)
	sel256 := meanThroughput(func(seed uint64) SimResult {
		return SimulateHEPnOS(m, 256, w, DefaultHEPnOSParams(BackendMap), seed)
	}, 3)
	if sel256 < 5*sel16 {
		t.Fatalf("selection should keep scaling while ingest saturates: %.0f -> %.0f", sel16, sel256)
	}
	// Loader occupancy is bounded by the file count.
	r := SimulateIngest(m, 256, w, 1)
	if r.Detail["busy_loaders"] > float64(w.Files) {
		t.Fatalf("more busy loaders than files: %+v", r.Detail)
	}
}

func TestServerRatioPaperChoiceNearOptimal(t *testing.T) {
	// §IV-D dedicates 1 node in 8 to servers. The sweep must be concave —
	// too many servers starves workers, too few starves the data path —
	// with the paper's choice within 10% of the best.
	rows := ServerRatioAblation(Theta(), 3)
	best, paper := 0.0, 0.0
	for _, r := range rows {
		if r.Throughput > best {
			best = r.Throughput
		}
		if r.Ratio == 8 {
			paper = r.Throughput
		}
	}
	if paper < 0.90*best {
		t.Fatalf("paper ratio 1:8 = %.0f, best = %.0f (>10%% off)", paper, best)
	}
	// Extremes lose to the paper choice.
	if rows[0].Throughput >= paper || rows[len(rows)-1].Throughput >= paper {
		t.Fatalf("ratio sweep is not concave: %+v", rows)
	}
}
