package simexp

import (
	"container/heap"

	"github.com/hep-on-hpc/hepnos-go/internal/stats"
)

// SimulateIngest models the DataLoader phase (§III-B): parallel loader
// ranks each take whole files from a shared queue, read them from the
// parallel file system, decode the columns and write events and products
// into HEPnOS with batched multi-puts. Because the unit of work is the
// file, this is "the first step of an HEP workflow, and the only step
// whose scalability is constrained by the number of files" — the model
// makes that constraint visible: beyond #files loader ranks, extra
// allocation buys nothing, and the PFS caps the read rate regardless.
func SimulateIngest(m ClusterModel, nodes int, w Workload, seed uint64) SimResult {
	if nodes < 1 || w.Files < 1 {
		return SimResult{Workflow: "ingest", Nodes: nodes, Workload: w}
	}
	servers := nodes / m.ServerRatio
	if servers < 1 {
		servers = 1
	}
	clientNodes := nodes - servers
	if clientNodes < 1 {
		clientNodes = 1
	}
	loaders := clientNodes * m.CoresPerNode
	rng := stats.NewRNG(seed)

	// Per-file statistics (same distributions as the traditional model).
	totalSlices := m.Slices(w)
	mu := logMu(m.MeanFileBytes, m.FileSpreadSigma)
	sizes := make([]float64, w.Files)
	var sizeSum float64
	for i := range sizes {
		sizes[i] = rng.LogNormal(mu, m.FileSpreadSigma)
		sizeSum += sizes[i]
	}
	scale := float64(w.Files) * m.MeanFileBytes / sizeSum
	slicesPerByte := totalSlices / (float64(w.Files) * m.MeanFileBytes)

	pfs := &Pipe{Rate: m.PFSBandwidth}
	md := &OpGate{OpsPerSec: m.PFSMetadataOps}
	// Each server ingests through its NIC and memory-backend write path.
	nics := make([]*Pipe, servers)
	for i := range nics {
		nics[i] = &Pipe{Rate: m.NICBandwidth}
	}
	// Decode cost per slice (column gather + struct fill); cheaper than
	// the selection since it is branch-free column copying.
	decodePerSlice := m.SliceCPUSeconds / 4

	active := loaders
	if w.Files < active {
		active = w.Files
	}
	free := make(slotHeap, active)
	heap.Init(&free)
	var lastEnd, busy float64
	nicIdx := 0
	for i := 0; i < w.Files; i++ {
		size := sizes[i] * scale
		slices := size * slicesPerByte
		storedBytes := slices * m.SliceBytes

		t := heap.Pop(&free).(float64)
		start := t
		t = md.Acquire(t)            // open
		t = pfs.Transfer(t, size)    // read the file
		t += slices * decodePerSlice // decode columns into structs
		// WriteBatch flushes stream to the servers round-robin.
		nic := nics[nicIdx%servers]
		nicIdx++
		t = nic.Transfer(t, storedBytes)
		heap.Push(&free, t)
		busy += t - start
		if t > lastEnd {
			lastEnd = t
		}
	}

	res := SimResult{
		Workflow:        "ingest",
		Nodes:           nodes,
		Workload:        w,
		MakespanSeconds: lastEnd,
		Detail: map[string]float64{
			"loaders":      float64(loaders),
			"busy_loaders": float64(active),
		},
	}
	if lastEnd > 0 {
		res.Throughput = float64(w.Events) / lastEnd // events/s for ingest
		res.CoreUtilization = busy / (float64(loaders) * lastEnd)
	}
	return res
}

// IngestScaling produces the ingest-phase series over the Fig2 node range.
func IngestScaling(m ClusterModel, trials int) Series {
	w := PaperWorkloads()[2]
	s := Series{Label: "ingest (events/s)"}
	for _, n := range Fig2Nodes {
		n := n
		s.Points = append(s.Points, runTrials(trials, float64(n), func(seed uint64) SimResult {
			return SimulateIngest(m, n, w, seed)
		}))
	}
	return s
}
