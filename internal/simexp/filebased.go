package simexp

import (
	"container/heap"
	"fmt"

	"github.com/hep-on-hpc/hepnos-go/internal/stats"
)

// SimulateFileBased runs the traditional workflow model: nodes×64 worker
// processes draw files from a shared pipelined queue (§IV-A); each file
// costs a metadata open, a contended parallel-file-system read, a per-file
// framework overhead and the per-slice selection CPU. The file queue is
// handed out to the earliest-free process, exactly the paper's "when a
// process is finished processing one file it requests the next file".
func SimulateFileBased(m ClusterModel, nodes int, w Workload, seed uint64) SimResult {
	if nodes < 1 || w.Files < 1 {
		return SimResult{Workflow: "file-based", Nodes: nodes, Workload: w}
	}
	procs := nodes * m.CoresPerNode
	rng := stats.NewRNG(seed)

	// Draw per-file sizes (lognormal, mean preserved) and slice counts
	// proportional to size — "wide variation in the size of files, or the
	// number or aggregate complexity of events in the files" (§I).
	totalSlices := m.Slices(w)
	sizes := make([]float64, w.Files)
	var sizeSum float64
	mu := logMu(m.MeanFileBytes, m.FileSpreadSigma)
	for i := range sizes {
		sizes[i] = rng.LogNormal(mu, m.FileSpreadSigma)
		sizeSum += sizes[i]
	}
	// Normalize so the sample total matches Files × MeanFileBytes, then
	// apportion slices by size.
	scale := float64(w.Files) * m.MeanFileBytes / sizeSum
	slicesPerByte := totalSlices / (float64(w.Files) * m.MeanFileBytes)

	pfs := &Pipe{Rate: m.PFSBandwidth}
	md := &OpGate{OpsPerSec: m.PFSMetadataOps}

	// Earliest-free process heap; at most min(procs, files) processes
	// ever get work.
	active := procs
	if w.Files < active {
		active = w.Files
	}
	free := make(slotHeap, active) // all free at t=0
	heap.Init(&free)
	var (
		lastEnd float64
		busy    float64
	)
	for i := 0; i < w.Files; i++ {
		size := sizes[i] * scale
		slices := size * slicesPerByte
		t := heap.Pop(&free).(float64)
		start := t
		t = md.Acquire(t)               // open() through the metadata service
		t = pfs.Transfer(t, size)       // contended read
		t += m.FileOverheadSeconds      // framework per-file cost
		t += slices * m.SliceCPUSeconds // selection
		heap.Push(&free, t)
		busy += t - start
		if t > lastEnd {
			lastEnd = t
		}
	}

	res := SimResult{
		Workflow:        "file-based",
		Nodes:           nodes,
		Workload:        w,
		MakespanSeconds: lastEnd,
		Detail: map[string]float64{
			"processes":      float64(procs),
			"busy_processes": float64(active),
			"pfs_busy_s":     pfs.BusySeconds(),
		},
	}
	if lastEnd > 0 {
		res.Throughput = totalSlices / lastEnd
		res.CoreUtilization = busy / (float64(procs) * lastEnd)
	}
	return res
}

func logMu(mean, sigma float64) float64 {
	return ln(mean) - sigma*sigma/2
}

func ln(x float64) float64 {
	// math.Log via a tiny indirection to keep imports tight here.
	return mathLog(x)
}

// String renders a result row.
func (r SimResult) String() string {
	return fmt.Sprintf("%-10s backend=%-4s nodes=%3d files=%4d events=%8d  makespan=%8.2fs  throughput=%10.0f slices/s  util=%4.1f%%",
		r.Workflow, r.Backend, r.Nodes, r.Workload.Files, r.Workload.Events,
		r.MakespanSeconds, r.Throughput, 100*r.CoreUtilization)
}
