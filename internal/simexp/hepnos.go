package simexp

import (
	"container/heap"
	"math"
	"sort"

	"github.com/hep-on-hpc/hepnos-go/internal/stats"
)

func mathLog(x float64) float64 { return math.Log(x) }

// HEPnOSParams tunes the HEPnOS workflow model; defaults are the paper's
// §IV-D configuration.
type HEPnOSParams struct {
	Backend Backend
	// LoadBatch is the events-per-RPC load batch (paper: 16384).
	LoadBatch int
	// WorkBatch is the events-per-work-item batch (paper: 64).
	WorkBatch int
	// Prefetch ships products with the load batches (paper: yes).
	Prefetch bool
}

// DefaultHEPnOSParams returns the paper's configuration for a backend.
func DefaultHEPnOSParams(b Backend) HEPnOSParams {
	return HEPnOSParams{Backend: b, LoadBatch: 16384, WorkBatch: 64, Prefetch: true}
}

// chainState is one event database's loading pipeline (one request
// outstanding, like the ParallelEventProcessor's background loader). The
// heap is keyed on the *arrival* time of the in-flight batch at the shared
// NIC, so FIFO pipes see time-ordered arrivals.
type chainState struct {
	db        int
	arrival   float64 // when the in-flight batch reaches the wire
	batch     int     // events in the in-flight batch
	remaining int     // events not yet requested
}

type chainHeap []*chainState

func (h chainHeap) Len() int           { return len(h) }
func (h chainHeap) Less(i, j int) bool { return h[i].arrival < h[j].arrival }
func (h chainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *chainHeap) Push(x any)        { *h = append(*h, x.(*chainState)) }
func (h *chainHeap) Pop() (out any)    { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// SimulateHEPnOS runs the HEPnOS workflow model at a given allocation.
//
// Deployment (§IV-D): one of every ServerRatio nodes runs servers; each
// server holds 8 event and 8 product databases. One reader per event
// database pages event keys out in LoadBatch-sized requests and (with
// Prefetch) pulls the corresponding products in bulk; each database chain
// keeps one request outstanding. Chains advance in virtual-time order so
// that shared resources (server NICs) interleave fairly. Delivered batches
// are chopped into WorkBatch work items drained by a work-conserving pool
// of client cores — the distributed queue.
//
// The per-batch backend service time is drawn lognormally around the
// backend's base cost: the in-memory backend is fast and tight; the LSM
// backend is slower with a heavy tail (block decodes, read amplification,
// compaction interference). Two emergent consequences reproduce §IV-E:
// with many batches per database (small allocations) the tails average out
// and both backends track the CPU bound; with few batches per database
// (large allocations) the slowest chain gates the run, and the heavy-
// tailed backend's slowest chain degrades faster.
func SimulateHEPnOS(m ClusterModel, nodes int, w Workload, p HEPnOSParams, seed uint64) SimResult {
	if p.LoadBatch <= 0 {
		p.LoadBatch = 16384
	}
	if p.WorkBatch <= 0 {
		p.WorkBatch = 64
	}
	servers := nodes / m.ServerRatio
	if servers < 1 {
		servers = 1
	}
	clientNodes := nodes - servers
	if clientNodes < 1 {
		clientNodes = 1
	}
	rng := stats.NewRNG(seed)

	eventDBs := servers * m.EventDBsPerServer
	bytesPerEvent := m.SlicesPerEvent * m.SliceBytes

	// Backend cost model.
	var baseRate, opCost, jitterSigma, readAmp float64
	switch p.Backend {
	case BackendLSM:
		// Effective read rate mixes page-cache hits with SSD misses and
		// carries heavy-tailed per-request latencies.
		baseRate = 3 * m.LSMBackendBandwidth
		opCost = m.LSMBackendOpSeconds
		jitterSigma = 1.0
		readAmp = m.LSMReadAmplification
	default:
		baseRate = m.MemBackendBandwidth
		opCost = m.MemBackendOpSeconds
		jitterSigma = 0.15
		readAmp = 1
	}

	// Server NICs; batches round-robin over servers (hash placement).
	nics := make([]*Pipe, servers)
	for i := range nics {
		nics[i] = &Pipe{Rate: m.NICBandwidth}
	}

	// drawService computes one batch's pre-wire service time: the
	// key-listing RPC plus (with prefetch) the jittered backend read.
	drawService := func(n int) float64 {
		svc := m.RPCLatencySeconds + m.RPCServerCPUSeconds
		svc += float64(n) * m.EventKeyBytes / baseRate
		if p.Prefetch {
			base := float64(n)*bytesPerEvent*readAmp/baseRate + opCost
			j := rng.LogNormal(-jitterSigma*jitterSigma/2, jitterSigma)
			svc += base * j
		}
		return svc
	}

	// Distribute events over databases (hash placement is near-uniform)
	// and launch each chain's first request at t=0.
	chains := make(chainHeap, 0, eventDBs)
	per := w.Events / eventDBs
	extra := w.Events % eventDBs
	for db := 0; db < eventDBs; db++ {
		n := per
		if db < extra {
			n++
		}
		if n == 0 {
			continue
		}
		batch := p.LoadBatch
		if batch > n {
			batch = n
		}
		chains = append(chains, &chainState{
			db:        db,
			arrival:   drawService(batch),
			batch:     batch,
			remaining: n - batch,
		})
	}
	heap.Init(&chains)

	type delivered struct {
		at     float64
		events int
	}
	var batches []delivered
	nicIdx := 0
	var slowestChain float64

	// Advance chains in wire-arrival order so the FIFO NIC pipes see
	// time-ordered traffic.
	for chains.Len() > 0 {
		c := heap.Pop(&chains).(*chainState)
		t := c.arrival
		if p.Prefetch {
			nic := nics[nicIdx%servers]
			nicIdx++
			t = nic.Transfer(t, float64(c.batch)*bytesPerEvent)
		}
		batches = append(batches, delivered{at: t, events: c.batch})
		if t > slowestChain {
			slowestChain = t
		}
		if c.remaining > 0 {
			n := p.LoadBatch
			if n > c.remaining {
				n = c.remaining
			}
			c.remaining -= n
			c.batch = n
			c.arrival = t + drawService(n)
			heap.Push(&chains, c)
		}
	}

	// Work distribution: chop batches into work items and drain them with
	// the client cores, earliest-ready first (the distributed queue).
	sort.Slice(batches, func(i, j int) bool { return batches[i].at < batches[j].at })
	workers := NewSlotPool(clientNodes * m.CoresPerNode)
	// Without prefetching, each work item synchronously fetches its
	// products before computing, blocking the worker for the round trips.
	fetchCost := func(events int) float64 {
		if p.Prefetch {
			return 0
		}
		j := rng.LogNormal(-jitterSigma*jitterSigma/2, jitterSigma)
		return float64(events)*(2*m.RPCLatencySeconds+bytesPerEvent*readAmp/baseRate)*j +
			opCost/16
	}
	firstStart := math.Inf(1)
	var lastEnd float64
	for _, b := range batches {
		for remaining := b.events; remaining > 0; {
			n := p.WorkBatch
			if n > remaining {
				n = remaining
			}
			remaining -= n
			dur := float64(n)*m.SlicesPerEvent*m.SliceCPUSeconds +
				m.WorkItemOverheadSeconds + fetchCost(n)
			start, end := workers.Schedule(b.at, dur)
			if start < firstStart {
				firstStart = start
			}
			if end > lastEnd {
				lastEnd = end
			}
		}
	}

	res := SimResult{
		Workflow: "hepnos",
		Backend:  p.Backend,
		Nodes:    nodes,
		Workload: w,
		Detail: map[string]float64{
			"servers":       float64(servers),
			"client_nodes":  float64(clientNodes),
			"event_dbs":     float64(eventDBs),
			"batches_perdb": math.Ceil(float64(w.Events) / float64(eventDBs) / float64(p.LoadBatch)),
			"slowest_chain": slowestChain,
		},
	}
	if math.IsInf(firstStart, 1) {
		return res
	}
	// Termination protocol drain: every rank polls every reader for its
	// "done"; the polls at one reader serialize.
	ranks := float64(clientNodes * m.CoresPerNode)
	lastEnd += ranks * m.TermPollSeconds

	// The paper measures from the first rank's processing start to the
	// last rank's processing end.
	res.MakespanSeconds = lastEnd - firstStart
	if res.MakespanSeconds > 0 {
		res.Throughput = m.Slices(w) / res.MakespanSeconds
		res.CoreUtilization = workers.BusySeconds() /
			(float64(workers.Slots()) * res.MakespanSeconds)
	}
	return res
}
