package simexp

// ClusterModel holds the calibrated constants describing the §IV testbed
// (Theta, a Cray XC40: 64-core KNL nodes, Aries dragonfly, Lustre) and the
// workload cost model. Each constant states its rationale; none is fitted
// to the paper's absolute numbers (which the paper does not print) — they
// are plausible hardware figures chosen once, after which the *shapes* in
// Figures 2 and 3 are emergent.
type ClusterModel struct {
	// CoresPerNode is 64 on Theta's Xeon Phi 7230.
	CoresPerNode int
	// SliceCPUSeconds is the candidate-selection cost per slice. KNL
	// cores are slow and the CAFAna cut sequence touches many fields;
	// ~0.3 ms/slice makes the 71.5M-slice sample a few-minute job on a
	// small allocation, consistent with a grid-style workload.
	SliceCPUSeconds float64
	// SliceBytes is the stored size of one slice's quantities. Roughly
	// 600 quantities × 4 bytes in the real CAF record; our reproduction
	// stores a subset, the paper's products are "tens of bytes to a few
	// megabytes". 2.4 KB/slice makes the 1x sample ~43 GB.
	SliceBytes float64
	// SlicesPerEvent is the paper's 4.10.
	SlicesPerEvent float64
	// EventKeyBytes is the size of an event key (16B UUID + 3×8B).
	EventKeyBytes float64

	// --- file-based workflow ---

	// PFSBandwidth is the *effective* aggregate Lustre read bandwidth
	// available to one job. Theta's file system peaked around 200 GB/s;
	// a single job contending with the machine sees far less.
	PFSBandwidth float64
	// PFSMetadataOps is the metadata service rate (file opens/sec).
	PFSMetadataOps float64
	// FileOverheadSeconds is the per-file framework cost (ROOT/CAFAna
	// initialization and per-file bookkeeping in the Python harness).
	FileOverheadSeconds float64
	// MeanFileBytes is the average input file size; NOvA's archive
	// averages ~115 MB/file (1.94 PB over 16.8M files, §III-A).
	MeanFileBytes float64
	// FileSpreadSigma is the lognormal sigma of file sizes ("wide
	// variation in the size of files", §I).
	FileSpreadSigma float64

	// --- HEPnOS workflow ---

	// ServerRatio is the paper's 1 server node per 8 allocated nodes.
	ServerRatio int
	// EventDBsPerServer and ProductDBsPerServer are the paper's 8 + 8.
	EventDBsPerServer   int
	ProductDBsPerServer int
	// RPCLatencySeconds is a one-way small-RPC latency on Aries via
	// Mercury/uGNI (~15 µs round trip measured in the Mercury paper's
	// class of systems).
	RPCLatencySeconds float64
	// RPCServerCPUSeconds is the per-RPC handler cost on the server.
	RPCServerCPUSeconds float64
	// NICBandwidth is a server NIC's injection bandwidth (Aries ~10 GB/s
	// unidirectional peak; we use an effective 8 GB/s).
	NICBandwidth float64
	// MemBackendBandwidth is the in-memory backend's read bandwidth per
	// server (memcpy-bound across 64 cores).
	MemBackendBandwidth float64
	// MemBackendOpSeconds is the fixed per-batch-read cost (map lookup
	// and iteration) of the in-memory backend.
	MemBackendOpSeconds float64
	// LSMBackendBandwidth is the node-local SSD read bandwidth (Theta's
	// local SSDs were ~500 MB/s class devices).
	LSMBackendBandwidth float64
	// LSMBackendOpSeconds is the fixed per-batch-read cost of the LSM
	// backend: index walks, block decodes and bloom checks across the
	// read amplification of a leveled store.
	LSMBackendOpSeconds float64
	// LSMReadAmplification multiplies bytes actually read from the SSD.
	LSMReadAmplification float64
	// SetupSeconds is the client-side connect/bootstrap cost per run.
	SetupSeconds float64
	// WorkItemOverheadSeconds is the queue/dispatch cost per work batch.
	WorkItemOverheadSeconds float64
	// TermPollSeconds is the cost of one end-of-run "reader done" poll:
	// every rank polls every reader once at termination, and the polls of
	// one reader serialize, so the drain tail grows with the rank count
	// (visible in the real ParallelEventProcessor protocol too).
	TermPollSeconds float64
}

// Theta returns the calibrated model of the paper's testbed.
func Theta() ClusterModel {
	return ClusterModel{
		CoresPerNode:    64,
		SliceCPUSeconds: 300e-6,
		SliceBytes:      2400,
		SlicesPerEvent:  4.101,
		EventKeyBytes:   40,

		PFSBandwidth:        90e9,
		PFSMetadataOps:      2000,
		FileOverheadSeconds: 3.0,
		MeanFileBytes:       115e6,
		FileSpreadSigma:     0.35,

		ServerRatio:             8,
		EventDBsPerServer:       8,
		ProductDBsPerServer:     8,
		RPCLatencySeconds:       15e-6,
		RPCServerCPUSeconds:     10e-6,
		NICBandwidth:            8e9,
		MemBackendBandwidth:     6e9,
		MemBackendOpSeconds:     2e-3,
		LSMBackendBandwidth:     500e6,
		LSMBackendOpSeconds:     30e-3,
		LSMReadAmplification:    1.6,
		SetupSeconds:            2.0,
		WorkItemOverheadSeconds: 20e-6,
		TermPollSeconds:         55e-6,
	}
}

// Backend selects the Yokan backend for the HEPnOS model.
type Backend string

// Evaluated backends (§IV-D/E).
const (
	BackendMap Backend = "map" // in-memory std::map analog
	BackendLSM Backend = "lsm" // RocksDB analog on node-local SSD
)

// Workload describes a dataset scale.
type Workload struct {
	Files  int
	Events int
}

// Slices returns the total slice count of the workload under the model.
func (m *ClusterModel) Slices(w Workload) float64 {
	return float64(w.Events) * m.SlicesPerEvent
}

// PaperWorkloads returns the three dataset sizes of §IV-D: the 1929-file
// base sample and its 2x and 4x replications.
func PaperWorkloads() []Workload {
	return []Workload{
		{Files: 1929, Events: 4359414},
		{Files: 3858, Events: 8718828},
		{Files: 7716, Events: 17437656},
	}
}

// SimResult is the outcome of one simulated run.
type SimResult struct {
	Workflow string
	Backend  Backend
	Nodes    int
	Workload Workload
	// MakespanSeconds is first-start to last-end.
	MakespanSeconds float64
	// Throughput is slices processed per second (the paper's y-axis).
	Throughput float64
	// CoreUtilization is the busy fraction of allocated worker cores.
	CoreUtilization float64
	// Detail carries workflow-specific diagnostics.
	Detail map[string]float64
}
