package simexp

import (
	"math"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() {
		order = append(order, 2)
		// Events scheduled during the run still fire in order.
		e.After(0.5, func() { order = append(order, 25) })
	})
	e.Run()
	want := []int{1, 2, 25, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestEngineClockMonotone(t *testing.T) {
	var e Engine
	last := -1.0
	for i := 0; i < 100; i++ {
		tt := float64((i * 37) % 50)
		e.At(tt, func() {
			if e.Now() < last {
				t.Fatal("clock went backwards")
			}
			last = e.Now()
		})
	}
	e.Run()
	// Scheduling in the past clamps to now.
	e.At(-5, func() {
		if e.Now() < last {
			t.Fatal("past event ran before now")
		}
	})
	e.Run()
}

func TestEngineDeterministicTieBreak(t *testing.T) {
	run := func() []int {
		var e Engine
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			e.At(1.0, func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-break is not deterministic")
		}
		if a[i] != i {
			t.Fatal("same-time events must run in scheduling order")
		}
	}
}

func TestPipeSerializes(t *testing.T) {
	p := &Pipe{Rate: 100}
	// Two 100-byte transfers arriving together: second waits.
	end1 := p.Transfer(0, 100)
	end2 := p.Transfer(0, 100)
	if end1 != 1 || end2 != 2 {
		t.Fatalf("ends = %v %v", end1, end2)
	}
	// A transfer arriving after the pipe is free starts immediately.
	end3 := p.Transfer(10, 50)
	if end3 != 10.5 {
		t.Fatalf("end3 = %v", end3)
	}
	if math.Abs(p.BusySeconds()-2.5) > 1e-12 {
		t.Fatalf("busy = %v", p.BusySeconds())
	}
	// Zero-rate pipe is free.
	free := &Pipe{}
	if free.Transfer(5, 1e9) != 5 {
		t.Fatal("zero-rate pipe should be instantaneous")
	}
}

func TestOpGate(t *testing.T) {
	g := &OpGate{OpsPerSec: 2}
	if got := g.Acquire(0); got != 0.5 {
		t.Fatalf("first = %v", got)
	}
	if got := g.Acquire(0); got != 1.0 {
		t.Fatalf("second = %v", got)
	}
	if got := g.Acquire(10); got != 10.5 {
		t.Fatalf("late = %v", got)
	}
	free := &OpGate{}
	if free.Acquire(3) != 3 {
		t.Fatal("zero-rate gate should be free")
	}
}

func TestSlotPool(t *testing.T) {
	p := NewSlotPool(2)
	s1, e1 := p.Schedule(0, 10)
	s2, e2 := p.Schedule(0, 10)
	s3, e3 := p.Schedule(0, 10)
	if s1 != 0 || s2 != 0 || e1 != 10 || e2 != 10 {
		t.Fatalf("first two: %v-%v %v-%v", s1, e1, s2, e2)
	}
	// Third waits for a slot.
	if s3 != 10 || e3 != 20 {
		t.Fatalf("third: %v-%v", s3, e3)
	}
	// Ready time after slot-free time wins.
	s4, _ := p.Schedule(100, 1)
	if s4 != 100 {
		t.Fatalf("s4 = %v", s4)
	}
	if p.Completed() != 4 || p.Slots() != 2 {
		t.Fatalf("completed=%d slots=%d", p.Completed(), p.Slots())
	}
	if p.BusySeconds() != 31 {
		t.Fatalf("busy = %v", p.BusySeconds())
	}
	// Degenerate pool size clamps to 1.
	if NewSlotPool(0).Slots() != 1 {
		t.Fatal("zero slots should clamp to 1")
	}
}
