package simexp

import (
	"fmt"
	"strings"

	"github.com/hep-on-hpc/hepnos-go/internal/stats"
)

// Fig2Nodes are the allocations swept by the strong-scaling study (§IV-E:
// "We varied the resource allocation from 16 nodes to 256 nodes").
var Fig2Nodes = []int{16, 32, 64, 128, 256}

// Series is one plotted line: a label and one point per x value, with the
// spread over repeated trials (the paper ran each point several times and
// jittered the dots).
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, mean throughput ± std) sample.
type Point struct {
	X      float64 // nodes (fig2) or events (fig3)
	Mean   float64 // slices per second
	Std    float64
	Trials []float64
}

// runTrials executes f over `trials` seeds and summarizes throughput.
func runTrials(trials int, x float64, f func(seed uint64) SimResult) Point {
	if trials < 1 {
		trials = 1
	}
	pt := Point{X: x}
	for s := 0; s < trials; s++ {
		r := f(uint64(1000*x) + uint64(s))
		pt.Trials = append(pt.Trials, r.Throughput)
	}
	sum := stats.Summarize(pt.Trials)
	pt.Mean, pt.Std = sum.Mean, sum.Std
	return pt
}

// Fig2 reproduces Figure 2: throughput vs nodes for the largest (7716
// file, 17,437,656 event) sample, for the traditional workflow and HEPnOS
// with both backends.
func Fig2(m ClusterModel, trials int) []Series {
	w := PaperWorkloads()[2]
	var out []Series
	file := Series{Label: "file-based"}
	mem := Series{Label: "hepnos/in-memory"}
	lsm := Series{Label: "hepnos/rocksdb(lsm)"}
	for _, n := range Fig2Nodes {
		n := n
		file.Points = append(file.Points, runTrials(trials, float64(n), func(seed uint64) SimResult {
			return SimulateFileBased(m, n, w, seed)
		}))
		mem.Points = append(mem.Points, runTrials(trials, float64(n), func(seed uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendMap), seed)
		}))
		lsm.Points = append(lsm.Points, runTrials(trials, float64(n), func(seed uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendLSM), seed)
		}))
	}
	out = append(out, file, lsm, mem)
	return out
}

// Fig3 reproduces Figure 3: throughput vs dataset size at a fixed 128-node
// allocation.
func Fig3(m ClusterModel, trials int) []Series {
	const nodes = 128
	var out []Series
	file := Series{Label: "file-based"}
	mem := Series{Label: "hepnos/in-memory"}
	lsm := Series{Label: "hepnos/rocksdb(lsm)"}
	for _, w := range PaperWorkloads() {
		w := w
		x := float64(w.Events)
		file.Points = append(file.Points, runTrials(trials, x, func(seed uint64) SimResult {
			return SimulateFileBased(m, nodes, w, seed)
		}))
		mem.Points = append(mem.Points, runTrials(trials, x, func(seed uint64) SimResult {
			return SimulateHEPnOS(m, nodes, w, DefaultHEPnOSParams(BackendMap), seed)
		}))
		lsm.Points = append(lsm.Points, runTrials(trials, x, func(seed uint64) SimResult {
			return SimulateHEPnOS(m, nodes, w, DefaultHEPnOSParams(BackendLSM), seed)
		}))
	}
	out = append(out, file, lsm, mem)
	return out
}

// WeakScaling grows the dataset proportionally with the allocation
// (events per node held constant at the 16-node share of the 4x sample).
// The abstract claims both weak and strong scalability; the paper's
// figures show only strong scaling, so this series is a model prediction
// recorded in EXPERIMENTS.md as such. Perfect weak scaling is a flat
// throughput-per-node line.
func WeakScaling(m ClusterModel, trials int) []Series {
	base := PaperWorkloads()[2]
	eventsPerNode := base.Events / 16
	filesPerNode := base.Files / 16
	var out []Series
	file := Series{Label: "file-based"}
	mem := Series{Label: "hepnos/in-memory"}
	lsm := Series{Label: "hepnos/rocksdb(lsm)"}
	for _, n := range Fig2Nodes {
		n := n
		w := Workload{Files: filesPerNode * n, Events: eventsPerNode * n}
		file.Points = append(file.Points, runTrials(trials, float64(n), func(seed uint64) SimResult {
			return SimulateFileBased(m, n, w, seed)
		}))
		mem.Points = append(mem.Points, runTrials(trials, float64(n), func(seed uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendMap), seed)
		}))
		lsm.Points = append(lsm.Points, runTrials(trials, float64(n), func(seed uint64) SimResult {
			return SimulateHEPnOS(m, n, w, DefaultHEPnOSParams(BackendLSM), seed)
		}))
	}
	out = append(out, file, lsm, mem)
	return out
}

// EfficiencyRow is one line of the derived strong-scaling table (tabA).
type EfficiencyRow struct {
	Workflow   string
	Nodes      int
	Throughput float64
	// Efficiency is relative to perfect scaling from the smallest
	// allocation: T(n)·n0 / (T(n0)·n) with throughput per node.
	Efficiency float64
}

// StrongScalingTable derives per-workflow efficiencies from Fig2 series.
func StrongScalingTable(series []Series) []EfficiencyRow {
	var rows []EfficiencyRow
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		base := s.Points[0]
		for _, p := range s.Points {
			eff := 0.0
			if base.Mean > 0 && p.X > 0 {
				eff = (p.Mean / p.X) / (base.Mean / base.X)
			}
			rows = append(rows, EfficiencyRow{
				Workflow:   s.Label,
				Nodes:      int(p.X),
				Throughput: p.Mean,
				Efficiency: eff,
			})
		}
	}
	return rows
}

// AblationRow is one line of the batch-size ablation (tabB): the §IV-D
// design choices (load batch 16384, work batch 64, prefetching).
type AblationRow struct {
	Name       string
	LoadBatch  int
	WorkBatch  int
	Prefetch   bool
	Throughput float64
}

// Ablation sweeps the ParallelEventProcessor tuning at 128 nodes on the
// largest sample.
func Ablation(m ClusterModel, trials int) []AblationRow {
	w := PaperWorkloads()[2]
	const nodes = 128
	cases := []AblationRow{
		{Name: "paper (16384/64/prefetch)", LoadBatch: 16384, WorkBatch: 64, Prefetch: true},
		{Name: "small load batches", LoadBatch: 1024, WorkBatch: 64, Prefetch: true},
		{Name: "tiny load batches", LoadBatch: 128, WorkBatch: 64, Prefetch: true},
		{Name: "coarse work batches", LoadBatch: 16384, WorkBatch: 4096, Prefetch: true},
		{Name: "fine work batches", LoadBatch: 16384, WorkBatch: 8, Prefetch: true},
		{Name: "no prefetching", LoadBatch: 16384, WorkBatch: 64, Prefetch: false},
	}
	for i := range cases {
		c := &cases[i]
		pt := runTrials(trials, float64(nodes)+float64(i), func(seed uint64) SimResult {
			return SimulateHEPnOS(m, nodes, w, HEPnOSParams{
				Backend:   BackendMap,
				LoadBatch: c.LoadBatch,
				WorkBatch: c.WorkBatch,
				Prefetch:  c.Prefetch,
			}, seed)
		})
		c.Throughput = pt.Mean
	}
	return cases
}

// FormatSeries renders series as the aligned text table the paperbench
// tool prints.
func FormatSeries(title, xName string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-12s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteString("\n")
	if len(series) == 0 || len(series[0].Points) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-12.0f", series[0].Points[i].X)
		for _, s := range series {
			fmt.Fprintf(&b, "  %11.0f ±%8.0f", s.Points[i].Mean, s.Points[i].Std)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ServerRatioRow is one line of the server-allocation ablation: the paper
// dedicates 1 node in 8 to servers; this sweep shows the trade — more
// servers means more database bandwidth but fewer worker cores.
type ServerRatioRow struct {
	Ratio      int // 1 server node per Ratio nodes
	Throughput float64
}

// ServerRatioAblation sweeps the server fraction at 128 nodes on the
// largest sample with the in-memory backend.
func ServerRatioAblation(m ClusterModel, trials int) []ServerRatioRow {
	w := PaperWorkloads()[2]
	var out []ServerRatioRow
	for _, ratio := range []int{2, 4, 8, 16, 32} {
		mm := m
		mm.ServerRatio = ratio
		pt := runTrials(trials, float64(ratio), func(seed uint64) SimResult {
			return SimulateHEPnOS(mm, 128, w, DefaultHEPnOSParams(BackendMap), seed)
		})
		out = append(out, ServerRatioRow{Ratio: ratio, Throughput: pt.Mean})
	}
	return out
}
