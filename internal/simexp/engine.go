// Package simexp reproduces the paper's evaluation (§IV, Figures 2 and 3)
// with a discrete-event simulation of the Theta deployment. The functional
// library in this repository runs for real at laptop scale; the figures,
// however, compare workflows on up to 256 XC40 nodes (16,384 cores), which
// no test machine can execute. Following DESIGN.md substitution #6, this
// package models the cluster — nodes, cores, a shared parallel file
// system, per-server storage backends and NICs — and drives the *policies*
// of the real system (pipelined file assignment; reader-per-database event
// loading in 16384-event batches; 64-event work batches shared by all
// ranks) in virtual time.
//
// Absolute numbers are model outputs; the reproduced claims are shape
// claims (who wins, where scaling flattens, efficiency ratios). Model
// constants live in model.go with their rationale.
package simexp

import (
	"container/heap"
	"fmt"
)

// Engine is a minimal discrete-event scheduler with a float64 clock
// (seconds).
type Engine struct {
	now float64
	pq  eventHeap
	seq int64 // tie-breaker for deterministic ordering
}

type simEvent struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (h eventHeap) Peek() simEvent  { return h[0] }
func (e *Engine) Now() float64      { return e.now }
func (e *Engine) Pending() int      { return len(e.pq) }
func (e *Engine) String() string    { return fmt.Sprintf("sim@%.3fs (%d pending)", e.now, len(e.pq)) }
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, simEvent{at: t, seq: e.seq, fn: fn})
}

// After schedules fn dt seconds from now.
func (e *Engine) After(dt float64, fn func()) { e.At(e.now+dt, fn) }

// Run drains the event queue.
func (e *Engine) Run() {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(simEvent)
		e.now = ev.at
		ev.fn()
	}
}

// Pipe is a shared FIFO bandwidth resource (bytes/second): transfers
// serialize through it, so concurrent demand saturates at exactly Rate.
// This models the parallel file system's aggregate bandwidth, a server
// NIC's injection bandwidth, and a storage backend's read bandwidth.
type Pipe struct {
	Rate     float64 // bytes per second
	nextFree float64
	busy     float64 // cumulative busy seconds
}

// Transfer reserves the pipe for size bytes starting no earlier than now,
// returning the completion time.
func (p *Pipe) Transfer(now, size float64) float64 {
	if p.Rate <= 0 {
		return now
	}
	start := now
	if p.nextFree > start {
		start = p.nextFree
	}
	dur := size / p.Rate
	p.nextFree = start + dur
	p.busy += dur
	return p.nextFree
}

// BusySeconds reports cumulative occupancy (for utilization accounting).
func (p *Pipe) BusySeconds() float64 { return p.busy }

// OpGate is a shared FIFO operation-rate resource (operations/second),
// modeling e.g. the file system's metadata service.
type OpGate struct {
	OpsPerSec float64
	nextFree  float64
}

// Acquire reserves one operation slot, returning its completion time.
func (g *OpGate) Acquire(now float64) float64 {
	if g.OpsPerSec <= 0 {
		return now
	}
	start := now
	if g.nextFree > start {
		start = g.nextFree
	}
	g.nextFree = start + 1/g.OpsPerSec
	return g.nextFree
}

// SlotPool models k identical execution slots (cores or xstreams) with a
// FIFO queue: work submitted when all slots are busy waits for the
// earliest-free slot. It is work-conserving, which matches the paper's
// fine-grained distributed work queue.
type SlotPool struct {
	free      slotHeap // earliest-free times, one per slot
	busy      float64
	completed int64
}

// NewSlotPool creates a pool with k slots, all free at time 0.
func NewSlotPool(k int) *SlotPool {
	if k < 1 {
		k = 1
	}
	p := &SlotPool{free: make(slotHeap, k)}
	heap.Init(&p.free)
	return p
}

type slotHeap []float64

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *slotHeap) Pop() (out any)    { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// Schedule books dur seconds on the earliest-available slot at or after
// ready, returning (start, end).
func (p *SlotPool) Schedule(ready, dur float64) (start, end float64) {
	slotFree := heap.Pop(&p.free).(float64)
	start = ready
	if slotFree > start {
		start = slotFree
	}
	end = start + dur
	heap.Push(&p.free, end)
	p.busy += dur
	p.completed++
	return start, end
}

// Slots returns the pool size.
func (p *SlotPool) Slots() int { return len(p.free) }

// BusySeconds reports total booked time across slots.
func (p *SlotPool) BusySeconds() float64 { return p.busy }

// Completed reports how many work items were scheduled.
func (p *SlotPool) Completed() int64 { return p.completed }
