package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/hep-on-hpc/hepnos-go
BenchmarkRealIngest-8   	       1	 52034211 ns/op	  61234.2 events/s	 4521344 B/op	    9123 allocs/op
BenchmarkRealHEPnOSSelection-8 	       3	  1203400 ns/op
BenchmarkWirePath      	 1000000	      1042 ns/op	 614.21 MB/s	      48 B/op	       2 allocs/op
--- BENCH: BenchmarkRealIngest-8
    bench_test.go:250: ingested 50000 events
PASS
ok  	github.com/hep-on-hpc/hepnos-go	3.21s
`

func TestParseBenchStream(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "github.com/hep-on-hpc/hepnos-go" {
		t.Fatalf("header mangled: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("results = %d, want 3: %+v", len(doc.Results), doc.Results)
	}

	ingest := doc.Results[0]
	if ingest.Name != "BenchmarkRealIngest" || ingest.Procs != 8 || ingest.Iterations != 1 {
		t.Fatalf("ingest envelope: %+v", ingest)
	}
	if ingest.NsPerOp != 52034211 || ingest.BPerOp != 4521344 || ingest.AllocsOp != 9123 {
		t.Fatalf("ingest standard units: %+v", ingest)
	}
	if ingest.Extra["events/s"] != 61234.2 {
		t.Fatalf("custom ReportMetric unit lost: %+v", ingest.Extra)
	}

	sel := doc.Results[1]
	if sel.Name != "BenchmarkRealHEPnOSSelection" || sel.Iterations != 3 || sel.NsPerOp != 1203400 {
		t.Fatalf("selection: %+v", sel)
	}

	wire := doc.Results[2]
	if wire.Name != "BenchmarkWirePath" || wire.Procs != 0 {
		t.Fatalf("no-procs name: %+v", wire)
	}
	if wire.MBPerSec != 614.21 {
		t.Fatalf("MB/s lost: %+v", wire)
	}
}

func TestParseIgnoresChatter(t *testing.T) {
	doc, err := parse(strings.NewReader("=== RUN TestX\n--- PASS: TestX\nPASS\nok  pkg 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("chatter parsed as results: %+v", doc.Results)
	}
}

func TestParseBenchLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                    // no fields
		"BenchmarkX notanumber 5 ns/op", // bad iteration count
		"NotABench 1 5 ns/op",           // wrong prefix
		"BenchmarkX 1 bogus ns/op",      // bad value
	} {
		if r, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted %q: %+v", line, r)
		}
	}
}
