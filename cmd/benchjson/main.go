// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive benchmark runs as machine-readable artifacts
// (BENCH_*.json) instead of scraping logs. It reads the bench output on
// stdin and writes one JSON object to -o:
//
//	go test -run '^$' -bench Real -benchtime 1x -benchmem . | benchjson -o BENCH_smoke.json
//
// Non-benchmark lines (test chatter, b.Log output) are ignored, so the
// tool can consume a raw `go test` stream. goos/goarch/pkg header lines
// are captured into the document when present.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"` // the -N suffix (GOMAXPROCS)
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerSec   float64 `json:"mb_per_s,omitempty"`
	BPerOp     int64   `json:"b_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units ("events/s": 1234).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

// parseBenchLine parses one "BenchmarkX-8  10  123 ns/op  ..." line.
// Returns false for anything that is not a benchmark result.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], procs
		}
	}
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerSec = val
		case "B/op":
			r.BPerOp = int64(val)
		case "allocs/op":
			r.AllocsOp = int64(val)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = val
		}
		seen = true
	}
	return r, seen
}

// parse consumes a go test -bench stream.
func parse(in io.Reader) (Doc, error) {
	var doc Doc
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if r, ok := parseBenchLine(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

func main() {
	out := flag.String("o", "BENCH_RESULTS.json", "output JSON path")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}
