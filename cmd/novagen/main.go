// Command novagen generates the synthetic NOvA sample used throughout this
// reproduction (§III-B of the paper, DESIGN.md substitution #5): h5lite
// files whose event/slice statistics match the paper's dataset, plus the
// file-list text file the traditional workflow consumes.
//
//	novagen -out /data/nova -files 64 -mean-events 500 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/hep-on-hpc/hepnos-go/internal/filebased"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
)

func main() {
	var (
		out        = flag.String("out", "nova-sample", "output directory")
		files      = flag.Int("files", 16, "number of files to generate")
		seed       = flag.Uint64("seed", 42, "generator seed (same seed = same sample)")
		meanEvents = flag.Float64("mean-events", 200, "mean events per file (paper scale: 2260)")
		perSubrun  = flag.Int("files-per-subrun", 2, "files per (run, subrun) pair")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	gen := nova.NewGenerator(nova.GenParams{
		Seed:              *seed,
		MeanEventsPerFile: *meanEvents,
		FilesPerSubRun:    *perSubrun,
	})
	paths, err := nova.GenerateSample(*out, gen, *files)
	if err != nil {
		fatal(err)
	}
	listPath := filepath.Join(*out, "filelist.txt")
	if err := filebased.WriteFileList(listPath, paths); err != nil {
		fatal(err)
	}

	events, slices := 0, 0
	for i := 0; i < *files; i++ {
		fd := gen.File(i)
		events += len(fd.Events)
		slices += fd.NumSlices()
	}
	fmt.Printf("generated %d files in %s (%d events, %d slices, %.2f slices/event)\n",
		*files, *out, events, slices, float64(slices)/float64(events))
	fmt.Printf("file list: %s\n", listPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "novagen:", err)
	os.Exit(1)
}
