// Command hdf2hepnos is the Go analog of the paper's HDF2HEPnOS tool
// (§III-B): it analyzes the structure of columnar event files, deduces the
// stored class and its member variables, and ingests the files into a
// HEPnOS dataset in parallel.
//
//	hdf2hepnos inspect FILE
//	    Print the inferred schema and the equivalent Go type definition
//	    (the analog of the generated C++ class).
//
//	hdf2hepnos ingest -group g.json -dataset fermilab/nova [-label slices]
//	                  [-j 8] FILE...
//	    Create the dataset and load every file's events and products.
//	    Files holding the NovaSlice class are decoded into nova.Slice.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hep-on-hpc/hepnos-go/hepnos"
	"github.com/hep-on-hpc/hepnos-go/internal/dataloader"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
	"github.com/hep-on-hpc/hepnos-go/internal/novaschema"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "inspect":
		inspect(os.Args[2:])
	case "ingest":
		ingest(os.Args[2:])
	case "export":
		export(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: hdf2hepnos {inspect FILE | ingest -group G -dataset D FILE... | export -group G -dataset D -out DIR}")
	os.Exit(2)
}

// export writes a dataset's slice products back to h5lite files, the
// archival inverse of ingest.
func export(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	groupPath := fs.String("group", "hepnos-group.json", "group file of the service")
	dataset := fs.String("dataset", "fermilab/nova", "dataset to export")
	label := fs.String("label", "slices", "product label")
	out := fs.String("out", "export", "output directory")
	fs.Parse(args)

	group, err := hepnos.ReadGroupFile(*groupPath)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: group})
	if err != nil {
		fatal(err)
	}
	defer ds.Close()
	d, err := ds.OpenDataSet(ctx, *dataset)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	// The NovaSlice schema drives the column layout, as at ingest.
	binding, err := dataloader.Bind(nova.Slice{}, novaschema.Slice())
	if err != nil {
		fatal(err)
	}
	exporter := &dataloader.Exporter{DS: ds, Label: *label}
	paths, st, err := exporter.ExportDataSet(ctx, d, binding, *out, "export")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exported %d files (%d events, %d rows) to %s\n", len(paths), st.Events, st.Rows, *out)
}

func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	schemas, err := dataloader.InspectFile(args[0])
	if err != nil {
		fatal(err)
	}
	for _, cs := range schemas {
		fmt.Printf("group %s: class %s, %d rows, %d member variables\n",
			cs.Group, cs.Class, cs.Rows, len(cs.Members))
		for _, m := range cs.Members {
			fmt.Printf("  %-14s %s\n", m.Column, m.DType)
		}
		fmt.Println()
		fmt.Println(dataloader.GenerateGoSource(cs))
	}
}

func ingest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	groupPath := fs.String("group", "hepnos-group.json", "group file of the service")
	dataset := fs.String("dataset", "fermilab/nova", "target dataset path")
	label := fs.String("label", "slices", "product label")
	parallel := fs.Int("j", 4, "concurrent file ingests")
	fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		usage()
	}

	group, err := hepnos.ReadGroupFile(*groupPath)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: group})
	if err != nil {
		fatal(err)
	}
	defer ds.Close()

	d, err := ds.CreateDataSet(ctx, *dataset)
	if err != nil {
		fatal(err)
	}
	schemas, err := dataloader.InspectFile(files[0])
	if err != nil {
		fatal(err)
	}
	var schema dataloader.ClassSchema
	found := false
	for _, cs := range schemas {
		if cs.Class == nova.SliceClass {
			schema, found = cs, true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("no %s group in %s (only NovaSlice ingest is wired up)", nova.SliceClass, files[0]))
	}
	binding, err := dataloader.Bind(nova.Slice{}, schema)
	if err != nil {
		fatal(err)
	}
	loader := &dataloader.Loader{DS: ds, Label: *label, Parallelism: *parallel}
	start := time.Now()
	st, err := loader.IngestFiles(ctx, d, binding, files)
	if err != nil {
		fatal(err)
	}
	dur := time.Since(start)
	fmt.Printf("ingested %d files: %d events, %d products, %d rows in %v (%.0f events/s)\n",
		st.Files, st.Events, st.Products, st.Rows, dur.Round(time.Millisecond),
		float64(st.Events)/dur.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hdf2hepnos:", err)
	os.Exit(1)
}
