// Command hepnos-ls inspects a live HEPnOS service: it lists datasets,
// runs, subruns, events and products, walking the same iterators client
// applications use.
//
//	hepnos-ls -group hepnos-group.json                 # top-level datasets
//	hepnos-ls -group g.json fermilab/nova              # runs of a dataset
//	hepnos-ls -group g.json -r fermilab/nova           # full recursive tree
//	hepnos-ls -group g.json -max 5 fermilab/nova       # truncate listings
//	hepnos-ls -group g.json -products                  # product census
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/hep-on-hpc/hepnos-go/hepnos"
)

func main() {
	var (
		groupPath = flag.String("group", "hepnos-group.json", "group file of the service")
		recursive = flag.Bool("r", false, "recurse into runs/subruns/events")
		maxItems  = flag.Int("max", 10, "items to print per level (0 = all)")
		stats     = flag.Bool("stats", false, "print service-wide provider statistics and exit")
		products  = flag.Bool("products", false, "print the per-database product census (keys only, no value decoding) and exit")
	)
	flag.Parse()

	group, err := hepnos.ReadGroupFile(*groupPath)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: group})
	if err != nil {
		fatal(err)
	}
	defer ds.Close()

	if *stats {
		st, err := ds.ServiceStats(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("providers: %d\n", st.Providers)
		fmt.Printf("ops: puts=%d gets=%d lists=%d erases=%d bulk=%d\n",
			st.Puts, st.Gets, st.Lists, st.Erases, st.BulkOps)
		names := make([]string, 0, len(st.DBCounts))
		for name := range st.DBCounts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-16s %d keys\n", name, st.DBCounts[name])
		}
		return
	}

	if *products {
		counts, err := ds.ProductCounts(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-32s %12s %12s\n", "database", "row products", "column pages")
		var rows, pages uint64
		for _, pc := range counts {
			fmt.Printf("%-32s %12d %12d\n", pc.DB.String(), pc.Rows, pc.Pages)
			rows += pc.Rows
			pages += pc.Pages
		}
		fmt.Printf("%-32s %12d %12d\n", "total", rows, pages)
		return
	}

	if flag.NArg() == 0 {
		names, err := ds.ListDataSets(ctx, "")
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	path := flag.Arg(0)
	d, err := ds.OpenDataSet(ctx, path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s (uuid %s)\n", d.Path(), d.UUID())

	children, err := ds.ListDataSets(ctx, path)
	if err != nil {
		fatal(err)
	}
	for _, c := range children {
		fmt.Printf("  dataset %s/%s\n", path, c)
	}

	runs, err := d.Runs(ctx)
	if err != nil {
		fatal(err)
	}
	for i, rn := range runs {
		if truncated("runs", i, len(runs), *maxItems, "  ") {
			break
		}
		fmt.Printf("  run %d\n", rn)
		if !*recursive {
			continue
		}
		run, err := d.Run(ctx, rn)
		if err != nil {
			fatal(err)
		}
		subs, err := run.SubRuns(ctx)
		if err != nil {
			fatal(err)
		}
		for j, sn := range subs {
			if truncated("subruns", j, len(subs), *maxItems, "    ") {
				break
			}
			fmt.Printf("    subrun %d\n", sn)
			sr, err := run.SubRun(ctx, sn)
			if err != nil {
				fatal(err)
			}
			events, err := sr.Events(ctx)
			if err != nil {
				fatal(err)
			}
			for k, en := range events {
				if truncated("events", k, len(events), *maxItems, "      ") {
					break
				}
				ev, err := sr.Event(ctx, en)
				if err != nil {
					fatal(err)
				}
				prods, err := ev.ListProducts(ctx)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("      event %d  products=%v\n", en, prods)
			}
		}
	}
}

// truncated prints an ellipsis line and reports whether to stop.
func truncated(what string, i, total, max int, indent string) bool {
	if max > 0 && i >= max {
		fmt.Printf("%s… (%d more %s)\n", indent, total-max, what)
		return true
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hepnos-ls:", err)
	os.Exit(1)
}
