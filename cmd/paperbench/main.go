// Command paperbench regenerates the paper's evaluation artifacts (§IV):
//
//	paperbench fig2            Figure 2: strong scaling, 16→256 nodes
//	paperbench fig3            Figure 3: throughput vs dataset size @128 nodes
//	paperbench table           derived strong-scaling efficiency table
//	paperbench ablate          §IV-D batch-size / prefetch ablation
//	paperbench all             everything above
//
// Flags:
//
//	-trials N   repeated runs per point (default 5; the paper also ran
//	            each experiment several times and jittered the dots)
//	-csv        emit comma-separated values instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/simexp"
)

func main() {
	trials := flag.Int("trials", 5, "trials per data point")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	realFiles := flag.Int("real-files", 8, "file count for the `real` mode")
	realRanks := flag.String("real-ranks", "1,2,4,8,16,32", "rank sweep for the `real` mode")
	realWork := flag.Duration("real-slice-cost", 300*time.Microsecond,
		"emulated per-slice compute for the `real` mode (paper-scale KNL cost)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paperbench [-trials N] [-csv] {fig2|fig3|weak|ingest|table|ablate|real|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	m := simexp.Theta()
	cmd := flag.Arg(0)
	run := func(name string) {
		switch name {
		case "fig2":
			series := simexp.Fig2(m, *trials)
			if *csv {
				printCSV("nodes", series)
			} else {
				fmt.Print(simexp.FormatSeries(
					"Figure 2: throughput (slices/s) vs nodes, 17,437,656-event sample", "nodes", series))
			}
		case "fig3":
			series := simexp.Fig3(m, *trials)
			if *csv {
				printCSV("events", series)
			} else {
				fmt.Print(simexp.FormatSeries(
					"Figure 3: throughput (slices/s) vs dataset size, 128 nodes", "events", series))
			}
		case "weak":
			series := simexp.WeakScaling(m, *trials)
			if *csv {
				printCSV("nodes", series)
			} else {
				fmt.Print(simexp.FormatSeries(
					"Weak scaling: throughput (slices/s) vs nodes, dataset ∝ nodes", "nodes", series))
			}
		case "real":
			if err := runReal(*realFiles, *realRanks, *trials, *realWork); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
				os.Exit(1)
			}
		case "ingest":
			series := []simexp.Series{simexp.IngestScaling(m, *trials)}
			if *csv {
				printCSV("nodes", series)
			} else {
				fmt.Print(simexp.FormatSeries(
					"Ingest phase (DataLoader): events/s vs nodes, 7716-file sample", "nodes", series))
			}
		case "table":
			rows := simexp.StrongScalingTable(simexp.Fig2(m, *trials))
			fmt.Println("== Strong-scaling efficiency (relative to 16 nodes) ==")
			for _, r := range rows {
				fmt.Printf("%-22s nodes=%4d  throughput=%12.0f  efficiency=%5.1f%%\n",
					r.Workflow, r.Nodes, r.Throughput, 100*r.Efficiency)
			}
		case "ablate":
			rows := simexp.Ablation(m, *trials)
			fmt.Println("== ParallelEventProcessor tuning ablation (128 nodes, 4x sample, in-memory) ==")
			for _, r := range rows {
				fmt.Printf("%-28s load=%6d work=%5d prefetch=%-5v  throughput=%12.0f\n",
					r.Name, r.LoadBatch, r.WorkBatch, r.Prefetch, r.Throughput)
			}
			fmt.Println()
			fmt.Println("== Server allocation ablation (1 server node per N nodes, 128 nodes) ==")
			for _, r := range simexp.ServerRatioAblation(m, *trials) {
				mark := ""
				if r.Ratio == 8 {
					mark = "  <- paper (§IV-D)"
				}
				fmt.Printf("1:%-4d  throughput=%12.0f%s\n", r.Ratio, r.Throughput, mark)
			}
		default:
			flag.Usage()
			os.Exit(2)
		}
	}
	if cmd == "all" {
		for _, name := range []string{"fig2", "fig3", "weak", "ingest", "table", "ablate"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(cmd)
}

func printCSV(xName string, series []Series) {
	labels := make([]string, 0, len(series))
	for _, s := range series {
		labels = append(labels, s.Label+"_mean", s.Label+"_std")
	}
	fmt.Printf("%s,%s\n", xName, strings.Join(labels, ","))
	if len(series) == 0 {
		return
	}
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%.0f", series[0].Points[i].X)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.1f", s.Points[i].Mean), fmt.Sprintf("%.1f", s.Points[i].Std))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

// Series aliases the simexp type for the CSV printer.
type Series = simexp.Series
