package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/dataloader"
	"github.com/hep-on-hpc/hepnos-go/internal/filebased"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
	"github.com/hep-on-hpc/hepnos-go/internal/workflow"
)

// runReal executes the full pipeline on the REAL system at laptop scale —
// no simulation anywhere: synthetic files, actual ingest over RPC, the
// actual file-based and HEPnOS workflows at increasing rank counts, and
// the §IV correctness check at every point. The absolute numbers are
// laptop numbers; the point is that the real code paths exhibit the
// paper's qualitative behaviour (HEPnOS scales with ranks while file-based
// parallelism is capped by the file count).
func runReal(files int, rankList string, trials int, sliceWork time.Duration) error {
	ranks, err := parseRanks(rankList)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "paperbench-real-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	gen := nova.NewGenerator(nova.GenParams{Seed: 4242, MeanEventsPerFile: 300, FilesPerSubRun: 2})
	paths, err := nova.GenerateSample(dir, gen, files)
	if err != nil {
		return err
	}
	dep, err := bedrock.Deploy(bedrock.DeploySpec{
		Servers:             2,
		ProvidersPerServer:  4,
		EventDBsPerServer:   8,
		ProductDBsPerServer: 8,
		NamePrefix:          "paperbench-real",
	})
	if err != nil {
		return err
	}
	defer dep.Shutdown()
	ctx := context.Background()
	ds, err := core.Connect(ctx, core.ClientConfig{Group: dep.Group})
	if err != nil {
		return err
	}
	defer ds.Close()
	dataset, err := ds.CreateDataSet(ctx, "real/nova")
	if err != nil {
		return err
	}
	schemas, err := dataloader.InspectFile(paths[0])
	if err != nil {
		return err
	}
	binding, err := dataloader.Bind(nova.Slice{}, schemas[0])
	if err != nil {
		return err
	}
	loader := &dataloader.Loader{DS: ds, Label: "slices", Parallelism: 8}
	st, err := loader.IngestFiles(ctx, dataset, binding, paths)
	if err != nil {
		return err
	}
	fmt.Printf("== Real system (no simulation): %d files, %d events, %d slices, %v/slice compute ==\n",
		files, st.Events, st.Rows, sliceWork)

	// Baseline reference for the correctness check.
	fileRef, err := filebased.Run(filebased.Config{Files: paths, Processes: 4})
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %16s %16s %14s  %s\n", "ranks", "hepnos slices/s", "file slices/s", "allocs/slice", "agree")
	var ms runtime.MemStats
	for _, r := range ranks {
		var hepThr, fileThr float64
		var hepAllocs, hepSlices uint64
		agree := true
		for trial := 0; trial < trials; trial++ {
			// Heap-allocation count across the whole HEPnOS workflow run
			// (RPCs, deserialization, selection) — the wire path's pooled
			// buffers are what keeps this per-slice figure flat.
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			hres, err := workflow.Run(ctx, ds, workflow.Config{
				Dataset: "real/nova", Label: "slices", Ranks: r, SliceWork: sliceWork,
			})
			if err != nil {
				return err
			}
			runtime.ReadMemStats(&ms)
			hepAllocs += ms.Mallocs - before
			hepSlices += uint64(hres.TotalSlices)
			hepThr += hres.Throughput
			if len(hres.Selected) != len(fileRef.Selected) {
				agree = false
			}
			fres, err := filebased.Run(filebased.Config{Files: paths, Processes: r, SliceWork: sliceWork})
			if err != nil {
				return err
			}
			fileThr += fres.Throughput
		}
		allocsPerSlice := float64(0)
		if hepSlices > 0 {
			allocsPerSlice = float64(hepAllocs) / float64(hepSlices)
		}
		fmt.Printf("%-8d %16.0f %16.0f %14.1f  %v\n",
			r, hepThr/float64(trials), fileThr/float64(trials), allocsPerSlice, agree)
	}
	return nil
}

func parseRanks(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad rank list %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}
