// Command hepnos-timeline performs the paper's offline timing analysis
// (§IV-B: per-rank timestamp files "are analyzed offline to determine the
// time taken to run each step of the process"). It reads the per-rank
// files written by the HEPnOS workflow (TimelineDir: rank-*.txt) or the
// per-process files written by the traditional harness (OutDir:
// timing-*.txt) and reports makespan, throughput and utilization.
//
//	hepnos-timeline DIR
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/hep-on-hpc/hepnos-go/internal/stats"
)

type rankRecord struct {
	name       string
	start, end float64
	events     int
	slices     int
	accepted   int
	degraded   int
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: hepnos-timeline DIR")
		os.Exit(2)
	}
	dir := os.Args[1]
	records, err := readRecords(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hepnos-timeline:", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintf(os.Stderr, "hepnos-timeline: no rank-*.txt or timing-*.txt files in %s\n", dir)
		os.Exit(1)
	}

	tl := stats.NewTimeline()
	totalEvents, totalSlices, totalAccepted, totalDegraded := 0, 0, 0, 0
	var durations []float64
	for _, r := range records {
		tl.Record(r.name, r.start, r.end)
		totalEvents += r.events
		totalSlices += r.slices
		totalAccepted += r.accepted
		totalDegraded += r.degraded
		durations = append(durations, r.end-r.start)
	}
	start, end, _ := tl.Makespan()
	makespan := end - start
	fmt.Printf("ranks:      %d\n", len(records))
	fmt.Printf("makespan:   %.3f s (first start %.3f, last end %.3f)\n", makespan, start, end)
	if totalSlices > 0 && makespan > 0 {
		fmt.Printf("throughput: %.0f slices/s (%d slices)\n", float64(totalSlices)/makespan, totalSlices)
	}
	if totalEvents > 0 && makespan > 0 {
		fmt.Printf("            %.0f events/s (%d events)\n", float64(totalEvents)/makespan, totalEvents)
	}
	if totalAccepted > 0 {
		fmt.Printf("accepted:   %d\n", totalAccepted)
	}
	if totalDegraded > 0 {
		// Prefetch groups that failed and fell back to per-product RPCs:
		// the batching of §II-D was partially lost on these loads.
		fmt.Printf("degraded prefetch loads: %d\n", totalDegraded)
	}
	fmt.Printf("utilization: %.1f%%\n", 100*tl.Utilization())
	s := stats.Summarize(durations)
	fmt.Printf("per-rank busy: mean %.3fs  min %.3fs  max %.3fs  p95 %.3fs\n",
		s.Mean, s.Min, s.Max, s.P95)

	// Straggler report: ranks finishing in the last 10% of the makespan.
	sort.Slice(records, func(i, j int) bool { return records[i].end > records[j].end })
	cutoff := end - 0.1*makespan
	var stragglers []string
	for _, r := range records {
		if r.end >= cutoff && makespan > 0 {
			stragglers = append(stragglers, r.name)
		}
	}
	if len(stragglers) > 0 && len(stragglers) < len(records) {
		fmt.Printf("stragglers (last 10%% of makespan): %s\n", strings.Join(stragglers, " "))
	}
}

// readRecords parses both formats: rank-*.txt (workflow) and timing-*.txt
// (file-based harness), which share the "key value" line structure.
func readRecords(dir string) ([]rankRecord, error) {
	var out []rankRecord
	for _, pattern := range []string{"rank-*.txt", "timing-*.txt"} {
		paths, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return nil, err
		}
		sort.Strings(paths)
		for _, p := range paths {
			rec, err := parseFile(p)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

func parseFile(path string) (rankRecord, error) {
	rec := rankRecord{name: strings.TrimSuffix(filepath.Base(path), ".txt")}
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		val := fields[1]
		switch fields[0] {
		case "start":
			rec.start, err = strconv.ParseFloat(val, 64)
		case "end":
			rec.end, err = strconv.ParseFloat(val, 64)
		case "events":
			rec.events, err = strconv.Atoi(val)
		case "slices":
			rec.slices, err = strconv.Atoi(val)
		case "accepted":
			rec.accepted, err = strconv.Atoi(val)
		case "degraded":
			rec.degraded, err = strconv.Atoi(val)
		}
		if err != nil {
			return rec, fmt.Errorf("parse %q: %w", line, err)
		}
	}
	if rec.end < rec.start {
		return rec, fmt.Errorf("end %f before start %f", rec.end, rec.start)
	}
	return rec, nil
}
