// Command hepnos-server boots a HEPnOS service process.
//
// Two modes:
//
//	hepnos-server -config bedrock.json [-group out.json]
//	    Boot one server from a Bedrock JSON document (the Mochi way).
//
//	hepnos-server -servers N [-backend map|lsm] [-path DIR] [-group out.json]
//	    Deploy N servers in this process with the paper's §IV-D layout
//	    (16 providers, 8 event + 8 product databases per server) over TCP.
//
// Either way the service description is written to the group file for
// clients to connect with, and the process serves until interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
)

func main() {
	var (
		configPath = flag.String("config", "", "Bedrock JSON configuration file")
		nServers   = flag.Int("servers", 1, "servers to deploy (ignored with -config)")
		providers  = flag.Int("providers", 16, "providers per server")
		eventDBs   = flag.Int("event-dbs", 8, "event databases per server")
		productDBs = flag.Int("product-dbs", 8, "product databases per server")
		backend    = flag.String("backend", "map", `backend: "map" or "lsm"`)
		pathBase   = flag.String("path", "", "storage directory for the lsm backend")
		groupOut   = flag.String("group", "hepnos-group.json", "group file to write")
		xstreams   = flag.Int("rpc-xstreams", 16, "RPC execution streams per server")
		pin        = flag.Bool("pin-providers", true, "pin each provider to its own execution stream (§IV-D)")
		printCfg   = flag.Bool("print-config", false, "print the generated Bedrock JSON configs and exit")
	)
	flag.Parse()

	if *printCfg {
		configs, err := bedrock.BuildConfigs(bedrock.DeploySpec{
			Servers:             *nServers,
			Scheme:              "tcp",
			ProvidersPerServer:  *providers,
			EventDBsPerServer:   *eventDBs,
			ProductDBsPerServer: *productDBs,
			Backend:             *backend,
			PathBase:            *pathBase,
			RPCXStreams:         *xstreams,
			PinProviders:        *pin,
		})
		if err != nil {
			fatal(err)
		}
		out, err := json.MarshalIndent(configs, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	group := bedrock.GroupFile{Protocol: "tcp"}
	var shutdown func()
	var servers []*bedrock.Server

	if *configPath != "" {
		srv, err := bedrock.BootFile(*configPath)
		if err != nil {
			fatal(err)
		}
		group.Servers = append(group.Servers, srv.Descriptor())
		servers = []*bedrock.Server{srv}
		shutdown = srv.Shutdown
	} else {
		dep, err := bedrock.Deploy(bedrock.DeploySpec{
			Servers:             *nServers,
			Scheme:              "tcp",
			ProvidersPerServer:  *providers,
			EventDBsPerServer:   *eventDBs,
			ProductDBsPerServer: *productDBs,
			Backend:             *backend,
			PathBase:            *pathBase,
			RPCXStreams:         *xstreams,
			PinProviders:        *pin,
		})
		if err != nil {
			fatal(err)
		}
		group = dep.Group
		servers = dep.Servers
		shutdown = dep.Shutdown
	}

	if err := bedrock.WriteGroupFile(*groupOut, group); err != nil {
		shutdown()
		fatal(err)
	}
	for _, s := range group.Servers {
		fmt.Printf("serving %s (providers %v)\n", s.Address, s.Providers)
	}
	fmt.Printf("group file written to %s — Ctrl-C or hepnos-shutdown to stop\n", *groupOut)

	// Stop on an OS signal or a remote shutdown RPC (hepnos-shutdown).
	remote := make(chan struct{}, 1)
	for _, srv := range servers {
		go func(srv *bedrock.Server) {
			<-srv.ShutdownRequested()
			select {
			case remote <- struct{}{}:
			default:
			}
		}(srv)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("signal received, shutting down")
	case <-remote:
		fmt.Println("remote shutdown requested, shutting down")
	}
	shutdown()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hepnos-server:", err)
	os.Exit(1)
}
