// Command errlint enforces the typed-error contract (DESIGN.md §15): no
// code outside internal/xerr may branch on error message *text*. Matching
// on err.Error() — equality, strings.Contains and friends, or a switch on
// the message — launders a typed error into a string and breaks the moment
// a message is reworded; classification must go through errors.Is /
// errors.As / xerr.ClassOf instead.
//
// The check is syntactic: any argument-less .Error() call whose result is
// compared against a string, fed to a strings predicate, or switched on is
// flagged. Rendering a message (logging, fmt, wrapping) is fine and not
// matched. Test files are exempt — asserting a human-facing message is a
// legitimate test concern — as is internal/xerr itself, which defines the
// message format.
//
// Usage: errlint [dir ...]   (default ".")
// Exits 1 if any violation is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// stringsMatchers are the strings-package predicates that turn a message
// into a branch condition.
var stringsMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
	"LastIndex": true,
	"Count":     true,
}

type finding struct {
	pos token.Position
	msg string
}

// isErrorCall reports whether e is an argument-less call to a method named
// Error — syntactically, err.Error().
func isErrorCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Error"
}

// lintFile walks one parsed file and returns every message-matching site.
func lintFile(fset *token.FileSet, f *ast.File) []finding {
	var out []finding
	report := func(pos token.Pos, msg string) {
		out = append(out, finding{pos: fset.Position(pos), msg: msg})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if node.Op != token.EQL && node.Op != token.NEQ {
				return true
			}
			if isErrorCall(node.X) || isErrorCall(node.Y) {
				report(node.Pos(), "comparing err.Error() text; use errors.Is or xerr.ClassOf")
			}
		case *ast.CallExpr:
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "strings" || !stringsMatchers[sel.Sel.Name] {
				return true
			}
			for _, arg := range node.Args {
				if isErrorCall(arg) {
					report(node.Pos(), "strings."+sel.Sel.Name+" over err.Error(); use errors.Is or xerr.ClassOf")
				}
			}
		case *ast.SwitchStmt:
			if node.Tag != nil && isErrorCall(node.Tag) {
				report(node.Pos(), "switch on err.Error() text; use errors.Is or xerr.ClassOf")
			}
		}
		return true
	})
	return out
}

// skipDir reports whether a directory is outside the lint scope.
func skipDir(path string) bool {
	base := filepath.Base(path)
	if base == "vendor" || base == "testdata" || strings.HasPrefix(base, ".") && base != "." {
		return true
	}
	return strings.Contains(filepath.ToSlash(path), "internal/xerr")
}

func lintTree(root string) ([]finding, error) {
	var all []finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(path) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		all = append(all, lintFile(fset, f)...)
		return nil
	})
	return all, err
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := false
	for _, root := range roots {
		findings, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "errlint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			bad = true
			fmt.Printf("%s: %s\n", f.pos, f.msg)
		}
	}
	if bad {
		os.Exit(1)
	}
}
