package main

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func lintSource(t *testing.T, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, f)
}

func TestFlagsMessageMatching(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"equality", `package p
func f(err error) bool { return err.Error() == "boom" }`},
		{"inequality", `package p
func f(err error) bool { return "boom" != err.Error() }`},
		{"contains", `package p
import "strings"
func f(err error) bool { return strings.Contains(err.Error(), "not found") }`},
		{"has-prefix", `package p
import "strings"
func f(err error) bool { return strings.HasPrefix(err.Error(), "yokan:") }`},
		{"switch", `package p
func f(err error) int { switch err.Error() { case "boom": return 1 }; return 0 }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := lintSource(t, tc.src); len(got) != 1 {
				t.Fatalf("findings = %d, want 1: %v", len(got), got)
			}
		})
	}
}

func TestAllowsLegitimateUses(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"render-into-message", `package p
import "fmt"
func f(err error) string { return fmt.Sprintf("failed: %s", err.Error()) }`},
		{"errors-is", `package p
import "errors"
var sentinel = errors.New("x")
func f(err error) bool { return errors.Is(err, sentinel) }`},
		{"serialize", `package p
func f(err error) []byte { return []byte(err.Error()) }`},
		{"strings-on-non-error", `package p
import "strings"
func f(s string) bool { return strings.Contains(s, "x") }`},
		{"error-method-with-args", `package p
type logger struct{}
func (logger) Error(msg string) string { return msg }
func f(l logger) bool { return l.Error("x") == "x" }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := lintSource(t, tc.src); len(got) != 0 {
				t.Fatalf("false positives: %v", got)
			}
		})
	}
}

func TestLintTreeSkipsTestsAndXerr(t *testing.T) {
	dir := t.TempDir()
	bad := `package p
func f(err error) bool { return err.Error() == "boom" }
`
	write := func(rel string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("pkg/a.go")                // counted
	write("pkg/a_test.go")           // exempt: test file
	write("internal/xerr/fmtgen.go") // exempt: the message-format package
	write("vendor/dep/d.go")         // exempt: vendored

	findings, err := lintTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want exactly the one in pkg/a.go: %v", len(findings), findings)
	}
	if filepath.Base(findings[0].pos.Filename) != "a.go" {
		t.Fatalf("wrong file flagged: %v", findings[0])
	}
}
