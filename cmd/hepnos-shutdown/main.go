// Command hepnos-shutdown remotely stops a running HEPnOS service — the
// analog of the hepnos-shutdown utility in the real distribution. It sends
// a shutdown RPC to every server listed in the group file.
//
//	hepnos-shutdown -group hepnos-group.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
)

var seq atomic.Int64

func main() {
	groupPath := flag.String("group", "hepnos-group.json", "group file of the service")
	ping := flag.Bool("ping", false, "only check liveness, do not shut down")
	flag.Parse()

	group, err := bedrock.ReadGroupFile(*groupPath)
	if err != nil {
		fatal(err)
	}
	addr := fabric.Address(fmt.Sprintf("inproc://hepnos-shutdown-%d", seq.Add(1)))
	if group.Protocol == "tcp" {
		addr = "tcp://127.0.0.1:0"
	}
	mi, err := margo.Init(margo.Config{Address: addr})
	if err != nil {
		fatal(err)
	}
	defer mi.Finalize()

	ctx := context.Background()
	if *ping {
		for _, srv := range group.Servers {
			if err := bedrock.Ping(ctx, mi, fabric.Address(srv.Address)); err != nil {
				fmt.Printf("%-40s DOWN (%v)\n", srv.Address, err)
			} else {
				fmt.Printf("%-40s alive\n", srv.Address)
			}
		}
		return
	}
	if err := bedrock.RemoteShutdown(ctx, mi, group); err != nil {
		fatal(err)
	}
	fmt.Printf("shutdown requested for %d servers\n", len(group.Servers))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hepnos-shutdown:", err)
	os.Exit(1)
}
