// Command hepnos-metrics scrapes a running HEPnOS service and renders a
// hot-path observability report — the collection role §V of the paper
// assigns to Symbiomon, over the same fabric the data path uses. For each
// server in the group file it pulls the metric families and the span ring
// through the admin provider, then prints the cluster state (membership
// epoch, per-server health, live migration progress), the hottest RPCs,
// per-database service time, async pool saturation, resilience activity and
// the client→server span linkage summary.
//
//	hepnos-metrics -group hepnos-group.json
//	hepnos-metrics -group hepnos-group.json -prom   # raw Prometheus text
//	hepnos-metrics -group hepnos-group.json -json   # raw JSON sources
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

var seq atomic.Int64

func main() {
	groupPath := flag.String("group", "hepnos-group.json", "group file of the service")
	prom := flag.Bool("prom", false, "dump raw Prometheus text exposition per server")
	asJSON := flag.Bool("json", false, "dump scraped sources as JSON")
	flag.Parse()

	group, err := bedrock.ReadGroupFile(*groupPath)
	if err != nil {
		fatal(err)
	}
	addr := fabric.Address(fmt.Sprintf("inproc://hepnos-metrics-%d", seq.Add(1)))
	if group.Protocol == "tcp" {
		addr = "tcp://127.0.0.1:0"
	}
	mi, err := margo.Init(margo.Config{Address: addr})
	if err != nil {
		fatal(err)
	}
	defer mi.Finalize()

	ctx := context.Background()
	if *prom {
		for _, srv := range group.Servers {
			text, err := bedrock.ScrapeProm(ctx, mi, fabric.Address(srv.Address))
			if err != nil {
				fatal(err)
			}
			fmt.Printf("# server %s\n%s", srv.Address, text)
		}
		return
	}
	if *asJSON {
		sources, err := bedrock.ScrapeGroup(ctx, mi, group)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sources); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(renderCluster(ctx, mi, group))
	// Scrape per server so a dead one costs its row, not the report — an
	// operator watching a drain needs the survivors' numbers most.
	var sources []obs.Source
	for _, srv := range group.Servers {
		src, err := bedrock.ScrapeSource(ctx, mi, fabric.Address(srv.Address))
		if err != nil {
			continue // already reported UNREACHABLE in the cluster section
		}
		sources = append(sources, src)
	}
	if len(sources) == 0 {
		fatal(fmt.Errorf("no server in %s answered a scrape", *groupPath))
	}
	fmt.Print(obs.RenderReport(sources))
}

// renderCluster summarizes the autopilot-facing state of every server: the
// membership epoch it is committed to, its liveness view, and where a live
// migration stands. A server that cannot be scraped is reported, not
// skipped — an operator watching a drain needs to see the dead, too.
func renderCluster(ctx context.Context, mi *margo.Instance, group bedrock.GroupFile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== cluster (%d servers, group epoch %d) ===\n", len(group.Servers), group.Epoch)
	for _, srv := range group.Servers {
		addr := fabric.Address(srv.Address)
		rep, err := bedrock.ScrapeHealth(ctx, mi, addr)
		if err != nil {
			fmt.Fprintf(&b, "%-40s UNREACHABLE (%v)\n", srv.Address, err)
			continue
		}
		healthy, total := 0, len(rep.Targets)
		for _, tgt := range rep.Targets {
			if tgt.State == "alive" || tgt.State == "rejoined" {
				healthy++
			}
		}
		fmt.Fprintf(&b, "%-40s epoch %d", srv.Address, rep.Epoch)
		if total > 0 {
			fmt.Fprintf(&b, "  sees %d/%d targets alive", healthy, total)
		}
		st, err := bedrock.ScrapeRebalance(ctx, mi, addr)
		if err == nil && st.Phase != "" && st.Phase != "idle" {
			fmt.Fprintf(&b, "  rebalance %s", st.Phase)
			if st.RangesTotal > 0 {
				fmt.Fprintf(&b, " %d/%d ranges, %d keys", st.RangesMoved, st.RangesTotal, st.KeysCopied)
			}
			if st.LastError != "" {
				fmt.Fprintf(&b, " last_error=%q", st.LastError)
			}
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hepnos-metrics:", err)
	os.Exit(1)
}
