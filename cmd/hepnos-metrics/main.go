// Command hepnos-metrics scrapes a running HEPnOS service and renders a
// hot-path observability report — the collection role §V of the paper
// assigns to Symbiomon, over the same fabric the data path uses. For each
// server in the group file it pulls the metric families and the span ring
// through the admin provider, then prints the hottest RPCs, per-database
// service time, async pool saturation, resilience activity and the
// client→server span linkage summary.
//
//	hepnos-metrics -group hepnos-group.json
//	hepnos-metrics -group hepnos-group.json -prom   # raw Prometheus text
//	hepnos-metrics -group hepnos-group.json -json   # raw JSON sources
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
)

var seq atomic.Int64

func main() {
	groupPath := flag.String("group", "hepnos-group.json", "group file of the service")
	prom := flag.Bool("prom", false, "dump raw Prometheus text exposition per server")
	asJSON := flag.Bool("json", false, "dump scraped sources as JSON")
	flag.Parse()

	group, err := bedrock.ReadGroupFile(*groupPath)
	if err != nil {
		fatal(err)
	}
	addr := fabric.Address(fmt.Sprintf("inproc://hepnos-metrics-%d", seq.Add(1)))
	if group.Protocol == "tcp" {
		addr = "tcp://127.0.0.1:0"
	}
	mi, err := margo.Init(margo.Config{Address: addr})
	if err != nil {
		fatal(err)
	}
	defer mi.Finalize()

	ctx := context.Background()
	if *prom {
		for _, srv := range group.Servers {
			text, err := bedrock.ScrapeProm(ctx, mi, fabric.Address(srv.Address))
			if err != nil {
				fatal(err)
			}
			fmt.Printf("# server %s\n%s", srv.Address, text)
		}
		return
	}
	sources, err := bedrock.ScrapeGroup(ctx, mi, group)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sources); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(obs.RenderReport(sources))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hepnos-metrics:", err)
	os.Exit(1)
}
