// Typed-error acceptance suite (the ISSUE 7 contract): errors raised on a
// server cross a real TCP fabric as wire-coded classes and sentinel codes,
// not laundered strings. The properties under assertion:
//
//   - a remote miss satisfies errors.Is(err, yokan.ErrKeyNotFound) on the
//     client, carries class not_found and the remote mark, and costs the
//     resilience policy zero retries;
//   - a QoS rejection surfaces as *qos.ShedError through errors.As, again
//     with zero retries;
//   - a remote per-replica fault (closed database) classifies unavailable
//     but is remote-marked, so the blind-retry rule refuses it;
//   - the client's metrics scrape exposes hepnos_errors_total labelled by
//     class for everything observed above.
package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/chaos"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
	"github.com/hep-on-hpc/hepnos-go/internal/xerr"
	"github.com/hep-on-hpc/hepnos-go/internal/yokan"
)

var xerrSeq atomic.Int64

// xerrService boots a TCP yokan provider and a TCP client whose calls run
// under a counting resilience policy, so the tests can assert not just the
// error identity but the number of retries it provoked.
func xerrService(t *testing.T, qcfg qos.Config, tenant string) (*yokan.Client, yokan.DBHandle, *yokan.Provider, *resilience.Policy, *margo.Instance) {
	t.Helper()
	server, err := margo.Init(margo.Config{Address: "tcp://127.0.0.1:0", RPCXStreams: 2, QoS: qcfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Finalize)
	prov, err := yokan.NewProvider(server, 1, nil, []yokan.DBConfig{{Name: fmt.Sprintf("xerr-db-%d", xerrSeq.Add(1))}})
	if err != nil {
		t.Fatal(err)
	}
	pol := &resilience.Policy{MaxRetries: 3, Retryable: fabric.RetryableError}
	cli, err := margo.Init(margo.Config{Address: "tcp://127.0.0.1:0", Tenant: tenant})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Finalize)
	yc := yokan.NewClient(cli)
	yc.Policy = pol
	h := yokan.DBHandle{Addr: server.Addr(), Provider: 1, Name: prov.Databases()[0]}
	return yc, h, prov, pol, cli
}

func TestTypedNotFoundCrossesTCP(t *testing.T) {
	yc, db, _, pol, cli := xerrService(t, qos.Config{}, "")
	ctx := context.Background()
	if err := yc.Put(ctx, db, []byte("present"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	_, err := yc.Get(ctx, db, []byte("missing"))
	if !errors.Is(err, yokan.ErrKeyNotFound) {
		t.Fatalf("remote miss lost sentinel identity: %v", err)
	}
	if got := xerr.ClassOf(err); got != xerr.ClassNotFound {
		t.Fatalf("ClassOf = %q, want not_found", got)
	}
	if !xerr.IsRemote(err) {
		t.Fatalf("remote miss not remote-marked: %v", err)
	}
	if xerr.Retryable(err) {
		t.Fatalf("a definitive miss must not be retryable: %v", err)
	}
	if n := pol.Counters().Retries; n != 0 {
		t.Fatalf("miss provoked %d retries, want 0", n)
	}

	// The hit path still works with the Found flag gone from the wire.
	if got, err := yc.Get(ctx, db, []byte("present")); err != nil || string(got) != "v" {
		t.Fatalf("Get(present) = %q, %v", got, err)
	}

	// The client endpoint counted the miss under its class.
	if n := cli.Endpoint().ErrorClasses()[string(xerr.ClassNotFound)]; n == 0 {
		t.Fatal("client endpoint did not count a not_found error")
	}
}

func TestTypedShedCrossesTCP(t *testing.T) {
	// One-token bucket with a negligible refill: the first call admits and
	// the second sheds, deterministically.
	qcfg := qos.Config{
		Enabled: true,
		Tenants: map[string]qos.TenantConfig{
			"greedy": {Weight: 1, RatePerSec: 0.0001, Burst: 1},
		},
	}
	yc, db, _, pol, cli := xerrService(t, qcfg, "greedy")
	// Rate admission applies to batch-class traffic; tag the context the
	// way WriteBatch flushes do.
	ctx := qos.WithClass(context.Background(), qos.ClassBatch)
	if err := yc.Put(ctx, db, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("first call should be admitted: %v", err)
	}

	err := yc.Put(ctx, db, []byte("k2"), []byte("v2"))
	var shed *qos.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("rejection is not a typed ShedError: %v", err)
	}
	if shed.Tenant != "greedy" {
		t.Fatalf("shed names tenant %q, want greedy", shed.Tenant)
	}
	if got := xerr.ClassOf(err); got != xerr.ClassShed {
		t.Fatalf("ClassOf = %q, want shed", got)
	}
	if xerr.Retryable(err) {
		t.Fatalf("a shed must not be blind-retried: %v", err)
	}
	if n := pol.Counters().Retries; n != 0 {
		t.Fatalf("shed provoked %d retries, want 0", n)
	}

	// The error-class census is scrapeable from the client endpoint.
	reg := obs.NewRegistry()
	cli.Endpoint().RegisterMetrics(reg)
	text := obs.PromText(reg.Snapshot())
	if !strings.Contains(text, `hepnos_errors_total{class="shed"}`) {
		t.Fatalf("scrape missing shed class counter:\n%s", text)
	}
}

func TestRemoteUnavailableIsNotBlindRetried(t *testing.T) {
	yc, db, prov, pol, _ := xerrService(t, qos.Config{}, "")
	ctx := context.Background()
	if err := yc.Put(ctx, db, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Close the backing database: the provider stays reachable but answers
	// every operation with ErrDBClosed.
	if err := prov.Close(); err != nil {
		t.Fatal(err)
	}

	_, err := yc.Get(ctx, db, []byte("k"))
	if !errors.Is(err, yokan.ErrDBClosed) {
		t.Fatalf("closed database lost sentinel identity: %v", err)
	}
	if !xerr.IsUnavailable(err) {
		t.Fatalf("ErrDBClosed must classify unavailable: %v", err)
	}
	if !xerr.IsRemote(err) {
		t.Fatalf("a served answer must carry the remote mark: %v", err)
	}
	if xerr.Retryable(err) {
		t.Fatal("remote unavailable must not be blind-retryable: the handler ran")
	}
	if n := pol.Counters().Retries; n != 0 {
		t.Fatalf("remote unavailable provoked %d retries, want 0", n)
	}
}

func TestErrorClassCensusScrape(t *testing.T) {
	yc, db, _, _, cli := xerrService(t, qos.Config{}, "")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := yc.Get(ctx, db, []byte(fmt.Sprintf("missing-%d", i))); !errors.Is(err, yokan.ErrKeyNotFound) {
			t.Fatalf("miss %d: %v", i, err)
		}
	}
	if _, err := yc.Get(ctx, yokan.DBHandle{Addr: db.Addr, Provider: db.Provider, Name: "no-such-db"}, []byte("k")); !errors.Is(err, yokan.ErrNoSuchDB) {
		t.Fatalf("bad database name: %v", err)
	}

	reg := obs.NewRegistry()
	cli.Endpoint().RegisterMetrics(reg)
	text := obs.PromText(reg.Snapshot())
	if !strings.Contains(text, `hepnos_errors_total{class="not_found"} 4`) {
		t.Fatalf("scrape missing not_found census:\n%s", text)
	}

	// Sentinel identities with a shared class stay distinct through the
	// wire: a missing database never reads as a missing key.
	_, err := yc.Get(ctx, yokan.DBHandle{Addr: db.Addr, Provider: db.Provider, Name: "no-such-db"}, []byte("k"))
	if errors.Is(err, yokan.ErrKeyNotFound) {
		t.Fatalf("ErrNoSuchDB conflated with ErrKeyNotFound: %v", err)
	}
}

// TestErrorClassCensusUnderChaos is the DESIGN.md §15 observability
// experiment: a chaos-seeded mixed workload (injected drops + misses) must
// produce an error-class census whose unavailable row equals the
// injector's own drop count exactly and whose not_found row equals the
// number of misses issued — proving the class labels are an accounting of
// what happened, not a sampling. Replay any failure with CHAOS_SEED=<seed>.
func TestErrorClassCensusUnderChaos(t *testing.T) {
	seed := chaos.SeedFromEnv(23)
	in := chaos.New(seed, &chaos.Flaky{P: 0.2})
	server, err := margo.Init(margo.Config{Address: "tcp://127.0.0.1:0", RPCXStreams: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Finalize)
	prov, err := yokan.NewProvider(server, 1, nil, []yokan.DBConfig{{Name: "census"}})
	if err != nil {
		t.Fatal(err)
	}
	pol := &resilience.Policy{MaxRetries: 8, Retryable: fabric.RetryableError}
	cli, err := margo.Init(margo.Config{
		Address: "tcp://127.0.0.1:0",
		NetSim:  &fabric.NetSim{Fault: in.ClientFault()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Finalize)
	yc := yokan.NewClient(cli)
	yc.Policy = pol
	db := yokan.DBHandle{Addr: server.Addr(), Provider: 1, Name: prov.Databases()[0]}

	ctx := context.Background()
	const puts, misses = 100, 50
	for i := 0; i < puts; i++ {
		if err := yc.Put(ctx, db, []byte(fmt.Sprintf("k-%03d", i)), []byte("v")); err != nil {
			t.Fatalf("put %d (seed %d): %v", i, seed, err)
		}
	}
	for i := 0; i < misses; i++ {
		if _, err := yc.Get(ctx, db, []byte(fmt.Sprintf("missing-%03d", i))); !errors.Is(err, yokan.ErrKeyNotFound) {
			t.Fatalf("miss %d (seed %d): %v", i, seed, err)
		}
	}

	census := cli.Endpoint().ErrorClasses()
	drops := int64(in.Drops())
	if census[string(xerr.ClassUnavailable)] != drops {
		t.Fatalf("unavailable census %d != injector drops %d (seed %d)",
			census[string(xerr.ClassUnavailable)], drops, seed)
	}
	if census[string(xerr.ClassNotFound)] != misses {
		t.Fatalf("not_found census %d != %d misses issued (seed %d)",
			census[string(xerr.ClassNotFound)], misses, seed)
	}
	retries := pol.Counters().Retries
	if retries == 0 || retries > drops {
		t.Fatalf("retries %d outside (0, drops=%d] (seed %d)", retries, drops, seed)
	}

	reg := obs.NewRegistry()
	cli.Endpoint().RegisterMetrics(reg)
	scrape := obs.PromText(reg.Snapshot())
	for _, class := range []xerr.Class{xerr.ClassUnavailable, xerr.ClassNotFound} {
		want := fmt.Sprintf("hepnos_errors_total{class=%q} %d", class, census[string(class)])
		if !strings.Contains(scrape, want) {
			t.Fatalf("scrape missing %q (seed %d):\n%s", want, seed, scrape)
		}
	}
	t.Logf("seed %d: %d ops, %d drops retried (%d retries), census %v",
		seed, puts+misses, drops, retries, census)
}
