// Observability end-to-end suite: boots a live multi-server deployment,
// runs the paper's ingest + CAFAna-style selection workloads with tracing
// on, scrapes every server through the admin monitoring RPCs (the path
// cmd/hepnos-metrics drives), and checks the cross-tier contract: client
// and server spans link up through the RPC envelope, per-database
// service-time aggregates exist, the async pools report saturation, and
// breadcrumb metrics agree with the span stream even under fault
// injection.
package bench

import (
	"context"
	"strings"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/chaos"
	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/margo"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
	"github.com/hep-on-hpc/hepnos-go/internal/workflow"
)

// scrapeAll pulls every server's metrics and spans plus the client's own,
// exactly what cmd/hepnos-metrics assembles.
func scrapeAll(ctx context.Context, t *testing.T, ds *core.DataStore, group bedrock.GroupFile, scraperAddr string) []obs.Source {
	t.Helper()
	mi, err := margo.Init(margo.Config{Address: fabric.Address(scraperAddr)})
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Finalize()
	sources, err := bedrock.ScrapeGroup(ctx, mi, group)
	if err != nil {
		t.Fatalf("scrape deployment: %v", err)
	}
	return append(sources, obs.Source{
		Name:     "client",
		Families: ds.Registry().Snapshot(),
		Spans:    ds.Tracer().Snapshot(),
	})
}

// TestObservabilityEndToEnd is the acceptance demo: ingest + selection on
// a live deployment, then a scrape must show linked client/server spans
// for the yokan Get/Put family, per-database service-time aggregates,
// async pool high-water marks and per-target breaker state.
func TestObservabilityEndToEnd(t *testing.T) {
	ctx := context.Background()
	files := chaosSample(t)
	dep := chaosDeploy(t, "obs-e2e")

	tracer := obs.NewTracer(1 << 16)
	ds, err := core.Connect(ctx, core.ClientConfig{
		Group:      dep.Group,
		Resilience: resilience.Default(),
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	st := chaosIngest(ctx, t, ds, files)
	if st.Events == 0 {
		t.Fatal("ingest stored no events")
	}
	// The CAFAna-style selection: ParallelEventProcessor over the dataset.
	if _, err := workflow.Run(ctx, ds, workflow.Config{Dataset: "fermilab/nova", Ranks: 4}); err != nil {
		t.Fatalf("selection workflow: %v", err)
	}

	sources := scrapeAll(ctx, t, ds, dep.Group, "inproc://obs-e2e-scraper")

	// 1. Linked spans: server spans on the yokan put/get families whose
	// Parent is a client span ID from the client source.
	clientIDs := map[uint64]bool{}
	for _, sp := range sources[len(sources)-1].Spans {
		if sp.Kind == obs.KindClient {
			clientIDs[sp.ID] = true
		}
	}
	linkedPut, linkedGet := 0, 0
	for _, src := range sources[:len(sources)-1] {
		for _, sp := range src.Spans {
			if sp.Kind != obs.KindServer || !clientIDs[sp.Parent] {
				continue
			}
			switch {
			case strings.Contains(sp.Name, "#put"):
				linkedPut++
			case strings.Contains(sp.Name, "#get"), strings.Contains(sp.Name, "#list_keys"):
				linkedGet++
			}
		}
	}
	if linkedPut == 0 || linkedGet == 0 {
		t.Errorf("linked client→server spans: put-family=%d get-family=%d, want both > 0", linkedPut, linkedGet)
	}

	// 2. Per-database service time on the servers.
	dbs := map[string]bool{}
	var opsTotal, secsTotal float64
	for _, src := range sources[:len(sources)-1] {
		for _, f := range src.Families {
			switch f.Name {
			case obs.MetricYokanOps:
				for _, s := range f.Samples {
					dbs[s.Labels["db"]] = true
					opsTotal += s.Value
				}
			case obs.MetricYokanOpSeconds:
				for _, s := range f.Samples {
					secsTotal += s.Value
				}
			}
		}
	}
	if len(dbs) < 2 || opsTotal == 0 || secsTotal <= 0 {
		t.Errorf("per-database aggregates: dbs=%v ops=%.0f seconds=%g", dbs, opsTotal, secsTotal)
	}

	// 3. Async pool saturation on the client: the engine ran work, so the
	// high-water mark is positive and the quiesced depth is back to zero.
	var maxDepth, depth float64
	depthSeen := false
	for _, f := range sources[len(sources)-1].Families {
		switch f.Name {
		case obs.MetricAsyncMaxDepth:
			for _, s := range f.Samples {
				maxDepth += s.Value
			}
		case obs.MetricAsyncDepth:
			depthSeen = true
			for _, s := range f.Samples {
				depth += s.Value
			}
		}
	}
	if maxDepth == 0 || !depthSeen || depth != 0 {
		t.Errorf("async pools: high-water=%.0f depth=%.0f (seen=%v), want high-water > 0 and depth 0", maxDepth, depth, depthSeen)
	}

	// 4. Breaker state per server target (closed — nothing failed).
	targets := map[string]float64{}
	for _, f := range sources[len(sources)-1].Families {
		if f.Name == obs.MetricBreakerState {
			for _, s := range f.Samples {
				targets[s.Labels["target"]] = s.Value
			}
		}
	}
	if len(targets) != len(dep.Group.Servers) {
		t.Errorf("breaker targets %v, want one per server (%d)", targets, len(dep.Group.Servers))
	}
	for tgt, state := range targets {
		if state != 0 {
			t.Errorf("breaker for %s in state %g, want closed (0)", tgt, state)
		}
	}

	// 5. The rendered report carries every section.
	report := obs.RenderReport(sources)
	for _, want := range []string{
		"hottest RPCs", "per-database service time", "async pool saturation",
		"resilience:", "linked client→server pairs=",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full report:\n%s", report)
	}
}

// TestChaosSpanMetricConsistency runs a write workload under seeded Flaky
// injection and checks that the two measurement systems agree: every
// origin-side call attempt (successful or failed, including retries)
// produced exactly one client span, so per-RPC span counts equal the
// breadcrumb profile's calls+errors and error spans equal its errors.
// Replay any failure with CHAOS_SEED=<seed>.
func TestChaosSpanMetricConsistency(t *testing.T) {
	ctx := context.Background()
	files := chaosSample(t)
	dep := chaosDeploy(t, "obs-chaos")

	seed := chaos.SeedFromEnv(5)
	in := chaos.New(seed, &chaos.Flaky{P: 0.05})
	chaos.Report(t, in)

	tracer := obs.NewTracer(1 << 17)
	ds, err := core.Connect(ctx, core.ClientConfig{
		Group:      dep.Group,
		NetSim:     &fabric.NetSim{Fault: in.ClientFault()},
		Resilience: resilience.Default(),
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	st := chaosIngest(ctx, t, ds, files)
	if st.Events == 0 {
		t.Fatal("ingest stored no events")
	}
	if in.Drops() == 0 {
		t.Fatalf("flaky injector dropped nothing over %d observations; seed %d too tame", in.Observed(), seed)
	}

	if _, dropped := tracer.Recorded(); dropped != 0 {
		t.Fatalf("tracer overwrote %d spans; grow the test buffer to keep the census exact", dropped)
	}

	// Census of client spans by RPC name.
	spanCalls := map[string]int64{}
	spanErrs := map[string]int64{}
	for _, sp := range tracer.Snapshot() {
		if sp.Kind != obs.KindClient {
			continue
		}
		spanCalls[sp.Name]++
		if sp.Err {
			spanErrs[sp.Name]++
		}
	}

	// The breadcrumb profile, scraped the same way cmd/hepnos-metrics
	// sees it: per-RPC calls and errors from the client registry.
	profCalls := map[string]float64{}
	profErrs := map[string]float64{}
	for _, f := range ds.Registry().Snapshot() {
		switch f.Name {
		case obs.MetricRPCCalls:
			for _, s := range f.Samples {
				profCalls[s.Labels["rpc"]] += s.Value
			}
		case obs.MetricRPCErrors:
			for _, s := range f.Samples {
				profErrs[s.Labels["rpc"]] += s.Value
			}
		}
	}

	for rpc := range profCalls {
		attempts := int64(profCalls[rpc] + profErrs[rpc])
		if spanCalls[rpc] != attempts {
			t.Errorf("rpc %s: %d client spans vs %d profiled attempts", rpc, spanCalls[rpc], attempts)
		}
		if spanErrs[rpc] != int64(profErrs[rpc]) {
			t.Errorf("rpc %s: %d error spans vs %d profiled errors", rpc, spanErrs[rpc], int64(profErrs[rpc]))
		}
	}
	for rpc := range spanCalls {
		if _, ok := profCalls[rpc]; !ok {
			t.Errorf("rpc %s has client spans but no breadcrumb profile", rpc)
		}
	}

	var totalErrs int64
	for _, n := range spanErrs {
		totalErrs += n
	}
	if totalErrs == 0 {
		t.Error("injected drops produced no error spans")
	}
}
