package bench

import (
	"context"
	"fmt"
	"testing"

	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
	"github.com/hep-on-hpc/hepnos-go/internal/serde"
)

// scanSample deploys a service and ingests NOvA slices through the
// columnar page path (nova.Slice registered columnar), returning the
// client and the total slice count.
func scanSample(b *testing.B, files int) (*core.DataStore, int) {
	b.Helper()
	if _, err := serde.RegisterColumnar([]nova.Slice{}); err != nil {
		b.Fatal(err)
	}
	dep, err := bedrock.Deploy(bedrock.DeploySpec{
		Servers:             2,
		ProvidersPerServer:  4,
		EventDBsPerServer:   4,
		ProductDBsPerServer: 4,
		NamePrefix:          fmt.Sprintf("bench-scan-%d", benchSeq.Add(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Shutdown)
	ctx := context.Background()
	ds, err := core.Connect(ctx, core.ClientConfig{Group: dep.Group})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(ds.Close)
	dataset, err := ds.CreateDataSet(ctx, "bench/scan")
	if err != nil {
		b.Fatal(err)
	}

	gen := nova.NewGenerator(nova.GenParams{Seed: 2026, MeanEventsPerFile: 120, SubRunsPerRun: 4})
	wb := ds.NewAsyncWriteBatch(256)
	runs := map[uint64]*core.Run{}
	slices := 0
	for i := 0; i < files; i++ {
		fd := gen.File(i)
		run := runs[fd.Run]
		if run == nil {
			if run, err = wb.CreateRun(ctx, dataset, fd.Run); err != nil {
				b.Fatal(err)
			}
			runs[fd.Run] = run
		}
		sr, err := wb.CreateSubRun(ctx, run, fd.SubRun)
		if err != nil {
			b.Fatal(err)
		}
		for e := range fd.Events {
			ev, err := wb.CreateEvent(ctx, sr, fd.Events[e].Event)
			if err != nil {
				b.Fatal(err)
			}
			if err := wb.Store(ctx, ev, "slices", fd.Events[e].Slices); err != nil {
				b.Fatal(err)
			}
			slices += len(fd.Events[e].Slices)
		}
	}
	if err := wb.Close(ctx); err != nil {
		b.Fatal(err)
	}
	return ds, slices
}

// benchPredicate is the 2-of-N-field NOvA selection of the scan
// experiment: an electron-score cut plus a contained-energy window, the
// kind of cut CAFAna applies first (the full selection needs the same two
// columns; see nova.SelectionColumns).
func benchPredicate() serde.Predicate {
	return serde.And(
		serde.GE("CVNe", 0.5),
		serde.GE("CalE", 1.0),
		serde.LE("CalE", 4.0),
	)
}

// BenchmarkScanPushdown runs the selection server-side: the predicate and
// the two-column projection travel with the scan RPC, only surviving rows'
// CVNe/CalE come back.
func BenchmarkScanPushdown(b *testing.B) {
	ds, slices := scanSample(b, 8)
	ctx := context.Background()
	dataset, err := ds.OpenDataSet(ctx, "bench/scan")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st core.ScanStats
	matched := 0
	for i := 0; i < b.N; i++ {
		cur := dataset.Scan(ctx, "slices", []nova.Slice{}, benchPredicate(), "CVNe", "CalE")
		matched = 0
		for cur.Next() {
			matched += cur.NumRows()
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		st = cur.Stats()
	}
	b.ReportMetric(float64(slices), "rows")
	b.ReportMetric(float64(matched), "matched")
	b.ReportMetric(float64(st.ReturnedBytes), "wire_B")
	if st.ReturnedBytes > 0 {
		b.ReportMetric(float64(st.FullBytes)/float64(st.ReturnedBytes), "reduction_x")
	}
}

// BenchmarkScanFullDecode is the row-oriented baseline: every column of
// every row crosses the wire and the filter runs client-side.
func BenchmarkScanFullDecode(b *testing.B) {
	ds, slices := scanSample(b, 8)
	ctx := context.Background()
	dataset, err := ds.OpenDataSet(ctx, "bench/scan")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var st core.ScanStats
	matched := 0
	for i := 0; i < b.N; i++ {
		cur := dataset.Scan(ctx, "slices", []nova.Slice{}, serde.Predicate{})
		matched = 0
		var rows []nova.Slice
		for cur.Next() {
			if err := cur.Rows(&rows); err != nil {
				b.Fatal(err)
			}
			for j := range rows {
				if rows[j].CVNe >= 0.5 && rows[j].CalE >= 1.0 && rows[j].CalE <= 4.0 {
					matched++
				}
			}
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		st = cur.Stats()
	}
	b.ReportMetric(float64(slices), "rows")
	b.ReportMetric(float64(matched), "matched")
	b.ReportMetric(float64(st.ReturnedBytes), "wire_B")
}
