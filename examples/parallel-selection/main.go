// Parallel selection: the paper's §IV-B workflow shape on a synthetic
// detector sample, entirely through the public API.
//
// An MPI-style world of ranks shares one dataset at event granularity: a
// ParallelEventProcessor run fetches events (with product prefetching),
// every rank applies a selection to its share, and the accepted IDs are
// reduced to rank 0 — no files anywhere.
//
//	go run ./examples/parallel-selection
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"github.com/hep-on-hpc/hepnos-go/hepnos"
)

// CalorimeterHit is this example's event product.
type CalorimeterHit struct {
	Cell   int32
	Energy float32 // GeV
	Time   float32 // ns
}

const (
	datasetPath = "example/beam"
	label       = "hits"
	ranks       = 6
)

func main() {
	ctx := context.Background()
	dep, err := hepnos.Deploy(hepnos.DeploySpec{
		Servers:            2,
		ProvidersPerServer: 4,
		NamePrefix:         "parallel-selection",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Shutdown()
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: dep.Group})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	produced := ingest(ctx, ds)
	fmt.Printf("ingested %d events\n", produced)

	// The parallel phase: every rank processes a disjoint share of the
	// events, prefetching the hits product in bulk.
	var (
		mu       sync.Mutex
		accepted []hepnos.EventID
		total    int64
	)
	dataset, err := ds.OpenDataSet(ctx, datasetPath)
	if err != nil {
		log.Fatal(err)
	}
	hepnos.NewWorld(ranks).Run(func(c *hepnos.Comm) {
		var local []hepnos.EventID
		stats, err := ds.ProcessEvents(ctx, c, dataset, hepnos.PEPOptions{
			WorkBatchSize: 8,
			Prefetch:      []hepnos.ProductSelector{hepnos.SelectorFor(label, []CalorimeterHit{})},
		}, func(ev *hepnos.Event) error {
			var hits []CalorimeterHit
			if err := ev.Load(ctx, label, &hits); err != nil {
				return err
			}
			// Selection: total energy above threshold with an in-time
			// leading hit.
			var sum float32
			var leadingTime float32
			for _, h := range hits {
				sum += h.Energy
				if h.Energy > 0 && (leadingTime == 0 || h.Time < leadingTime) {
					leadingTime = h.Time
				}
			}
			if sum > 12 && leadingTime < 200 {
				local = append(local, ev.ID())
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		// "An MPI reduction is then used to send those slice IDs to rank 0."
		mu.Lock()
		accepted = append(accepted, local...)
		mu.Unlock()
		if c.Rank() == 0 {
			mu.Lock()
			total = stats.TotalEvents
			mu.Unlock()
			fmt.Printf("rank 0: world processed %d events at %.0f events/s\n",
				stats.TotalEvents, stats.Throughput)
		}
	})

	sort.Slice(accepted, func(i, j int) bool {
		a, b := accepted[i], accepted[j]
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.SubRun != b.SubRun {
			return a.SubRun < b.SubRun
		}
		return a.Event < b.Event
	})
	fmt.Printf("accepted %d of %d events:\n", len(accepted), total)
	for i, id := range accepted {
		if i == 10 {
			fmt.Printf("  … %d more\n", len(accepted)-10)
			break
		}
		fmt.Printf("  %s\n", id)
	}
}

// ingest writes a deterministic synthetic sample with a WriteBatch.
func ingest(ctx context.Context, ds *hepnos.DataStore) int {
	dataset, err := ds.CreateDataSet(ctx, datasetPath)
	if err != nil {
		log.Fatal(err)
	}
	wb := ds.NewWriteBatch()
	wb.MaxPending = 1024
	n := 0
	for runNo := uint64(1); runNo <= 2; runNo++ {
		run, err := wb.CreateRun(ctx, dataset, runNo)
		if err != nil {
			log.Fatal(err)
		}
		for srNo := uint64(0); srNo < 4; srNo++ {
			sr, err := wb.CreateSubRun(ctx, run, srNo)
			if err != nil {
				log.Fatal(err)
			}
			for evNo := uint64(0); evNo < 50; evNo++ {
				ev, err := wb.CreateEvent(ctx, sr, evNo)
				if err != nil {
					log.Fatal(err)
				}
				hits := makeHits(runNo, srNo, evNo)
				if err := wb.Store(ctx, ev, label, hits); err != nil {
					log.Fatal(err)
				}
				n++
			}
		}
	}
	if err := wb.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	return n
}

// makeHits builds a deterministic pseudo-random hit pattern.
func makeHits(run, sr, ev uint64) []CalorimeterHit {
	x := run*1_000_003 + sr*10_007 + ev*101 + 17
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	nHits := int(next()%20) + 3
	hits := make([]CalorimeterHit, nHits)
	for i := range hits {
		hits[i] = CalorimeterHit{
			Cell:   int32(next() % 4096),
			Energy: float32(next()%1000) / 350,
			Time:   float32(next() % 500),
		}
	}
	return hits
}
