// Multipass: the paper's §I motivation for keeping data in a service —
// "a common scenario in many HEP analyses is the iterative refinement or
// tuning of the analysis process ... This requires multiple passes through
// a given dataset. Having the data available in a distributed data service
// not only makes this more convenient, but also spreads the cost of
// loading the data over all iterations."
//
// This example ingests a synthetic sample once, then runs the candidate
// selection three times with progressively tighter classifier cuts —
// scanning cut thresholds the way an analyzer tunes a selection — without
// touching a file after the first load. It prints per-pass timings: pass 1
// pays the ingest; passes 2+ only pay the (fast, in-memory) reads.
//
//	go run ./examples/multipass
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"github.com/hep-on-hpc/hepnos-go/hepnos"
	"github.com/hep-on-hpc/hepnos-go/internal/dataloader"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
)

const (
	datasetPath = "fermilab/nova"
	label       = "slices"
	ranks       = 6
)

func main() {
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "hepnos-multipass-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	gen := nova.NewGenerator(nova.GenParams{Seed: 21, MeanEventsPerFile: 300, FilesPerSubRun: 2})
	files, err := nova.GenerateSample(dir, gen, 10)
	if err != nil {
		log.Fatal(err)
	}

	dep, err := hepnos.Deploy(hepnos.DeploySpec{Servers: 2, ProvidersPerServer: 4, NamePrefix: "multipass"})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Shutdown()
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: dep.Group})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	// Pass 0: the one-time ingest (the only file-bound step).
	start := time.Now()
	dataset, err := ds.CreateDataSet(ctx, datasetPath)
	if err != nil {
		log.Fatal(err)
	}
	schemas, err := dataloader.InspectFile(files[0])
	if err != nil {
		log.Fatal(err)
	}
	binding, err := dataloader.Bind(nova.Slice{}, schemas[0])
	if err != nil {
		log.Fatal(err)
	}
	loader := &dataloader.Loader{DS: ds, Label: label, Parallelism: 4}
	st, err := loader.IngestFiles(ctx, dataset, binding, files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingest: %d events / %d slices from %d files in %v\n",
		st.Events, st.Rows, st.Files, time.Since(start).Round(time.Millisecond))

	// Tuning scan: tighten the electron-classifier threshold each pass.
	for pass, cvneCut := range []float32{0.75, 0.84, 0.92} {
		passStart := time.Now()
		accepted, slices := runSelection(ctx, ds, dataset, cvneCut)
		fmt.Printf("pass %d (CVNe > %.2f): %7d slices scanned, %3d accepted, %v\n",
			pass+1, cvneCut, slices, accepted, time.Since(passStart).Round(time.Millisecond))
	}
}

// runSelection processes every event across MPI-style ranks with the given
// classifier threshold, returning (accepted, slices examined).
func runSelection(ctx context.Context, ds *hepnos.DataStore, dataset *hepnos.DataSet, cvneCut float32) (int, int) {
	var mu sync.Mutex
	accepted, slices := 0, 0
	hepnos.NewWorld(ranks).Run(func(c *hepnos.Comm) {
		localAcc, localSl := 0, 0
		_, err := ds.ProcessEvents(ctx, c, dataset, hepnos.PEPOptions{
			Prefetch: []hepnos.ProductSelector{hepnos.SelectorFor(label, []nova.Slice{})},
		}, func(ev *hepnos.Event) error {
			var ss []nova.Slice
			if err := ev.Load(ctx, label, &ss); err != nil {
				return err
			}
			localSl += len(ss)
			for i := range ss {
				// The tuned cut under study, on top of the standard
				// selection.
				if ss[i].CVNe > cvneCut && nova.SelectCandidate(&ss[i]) {
					localAcc++
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		accepted += localAcc
		slices += localSl
		mu.Unlock()
	})
	return accepted, slices
}
