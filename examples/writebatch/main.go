// Writebatch: the §II-D batching patterns, measured.
//
// Stores the same 4,000 products three ways — one RPC per store, a
// WriteBatch grouped by target database, and an asynchronous WriteBatch
// flushing on the client's AsyncEngine — and prints the throughput of
// each, to show why HEPnOS batches small-object traffic.
//
//	go run ./examples/writebatch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/hep-on-hpc/hepnos-go/hepnos"
)

// Digest is a small per-event product, typical of HEP metadata.
type Digest struct {
	NHits   uint32
	Energy  float64
	Quality float32
}

const perRun = 4000

func main() {
	ctx := context.Background()
	dep, err := hepnos.Deploy(hepnos.DeploySpec{Servers: 2, ProvidersPerServer: 4, NamePrefix: "writebatch"})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Shutdown()
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: dep.Group})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	dataset, err := ds.CreateDataSet(ctx, "bench/batching")
	if err != nil {
		log.Fatal(err)
	}

	// Variant 1: one store per RPC.
	run1, _ := dataset.CreateRun(ctx, 1)
	sr1, _ := run1.CreateSubRun(ctx, 0)
	start := time.Now()
	for i := uint64(0); i < perRun; i++ {
		ev, err := sr1.CreateEvent(ctx, i)
		if err != nil {
			log.Fatal(err)
		}
		if err := ev.Store(ctx, "digest", Digest{NHits: uint32(i)}); err != nil {
			log.Fatal(err)
		}
	}
	report("one RPC per operation", start)

	// Variant 2: WriteBatch — group updates by database, flush multi-puts.
	run2, _ := dataset.CreateRun(ctx, 2)
	sr2, _ := run2.CreateSubRun(ctx, 0)
	start = time.Now()
	wb := ds.NewWriteBatch()
	for i := uint64(0); i < perRun; i++ {
		ev, err := wb.CreateEvent(ctx, sr2, i)
		if err != nil {
			log.Fatal(err)
		}
		if err := wb.Store(ctx, ev, "digest", Digest{NHits: uint32(i)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := wb.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	report("WriteBatch (grouped multi-put)", start)

	// Variant 3: asynchronous WriteBatch — flushes run on the client's
	// AsyncEngine, overlapping event production with storage traffic.
	run3, _ := dataset.CreateRun(ctx, 3)
	sr3, _ := run3.CreateSubRun(ctx, 0)
	start = time.Now()
	awb := ds.NewAsyncWriteBatch(512)
	for i := uint64(0); i < perRun; i++ {
		ev, err := awb.CreateEvent(ctx, sr3, i)
		if err != nil {
			log.Fatal(err)
		}
		if err := awb.Store(ctx, ev, "digest", Digest{NHits: uint32(i)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := awb.Close(ctx); err != nil {
		log.Fatal(err)
	}
	report("async WriteBatch (engine)", start)

	// Verify all three runs landed completely.
	for _, r := range []uint64{1, 2, 3} {
		run, err := dataset.Run(ctx, r)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := run.SubRun(ctx, 0)
		if err != nil {
			log.Fatal(err)
		}
		events, err := sr.Events(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if len(events) != perRun {
			log.Fatalf("run %d holds %d events, want %d", r, len(events), perRun)
		}
	}
	fmt.Printf("verified: all 3 runs hold %d events each\n", perRun)
}

func report(name string, start time.Time) {
	dur := time.Since(start)
	// Each loop iteration issues two updates: a create and a store.
	rate := float64(2*perRun) / dur.Seconds()
	fmt.Printf("%-32s %8s  (%8.0f updates/s)\n", name, dur.Round(time.Millisecond), rate)
}
