// Ingest: the paper's full NOvA pipeline at laptop scale — generate a
// synthetic file sample (novagen), infer its schema and load it into
// HEPnOS (HDF2HEPnOS / DataLoader), then run the candidate selection both
// the traditional way (files + process pool) and the HEPnOS way (MPI ranks
// + ParallelEventProcessor), verifying they accept the same slices — the
// correctness criterion of §IV.
//
//	go run ./examples/ingest
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"reflect"

	"github.com/hep-on-hpc/hepnos-go/hepnos"
	"github.com/hep-on-hpc/hepnos-go/internal/dataloader"
	"github.com/hep-on-hpc/hepnos-go/internal/filebased"
	"github.com/hep-on-hpc/hepnos-go/internal/nova"
	"github.com/hep-on-hpc/hepnos-go/internal/workflow"
)

func main() {
	ctx := context.Background()

	// 1. Generate the file sample (the grid's starting point).
	dir, err := os.MkdirTemp("", "hepnos-ingest-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	gen := nova.NewGenerator(nova.GenParams{Seed: 7, MeanEventsPerFile: 150, FilesPerSubRun: 2})
	files, err := nova.GenerateSample(dir, gen, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d files in %s\n", len(files), dir)

	// 2. Deploy HEPnOS and ingest: schema inference + parallel load.
	dep, err := hepnos.Deploy(hepnos.DeploySpec{Servers: 2, ProvidersPerServer: 4, NamePrefix: "ingest"})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Shutdown()
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: dep.Group})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	dataset, err := ds.CreateDataSet(ctx, "fermilab/nova")
	if err != nil {
		log.Fatal(err)
	}
	schemas, err := dataloader.InspectFile(files[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred class %s with %d member variables\n",
		schemas[0].Class, len(schemas[0].Members))
	binding, err := dataloader.Bind(nova.Slice{}, schemas[0])
	if err != nil {
		log.Fatal(err)
	}
	loader := &dataloader.Loader{DS: ds, Label: "slices", Parallelism: 4}
	st, err := loader.IngestFiles(ctx, dataset, binding, files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d events / %d slices\n", st.Events, st.Rows)

	// 3. Traditional workflow over the files.
	fileRes, err := filebased.Run(filebased.Config{Files: files, Processes: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file-based: %d slices examined, %d accepted, %.0f slices/s\n",
		fileRes.TotalSlices, len(fileRes.Selected), fileRes.Throughput)

	// 4. HEPnOS workflow over the service.
	hepRes, err := workflow.Run(ctx, ds, workflow.Config{
		Dataset: "fermilab/nova",
		Ranks:   6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hepnos:     %d slices examined, %d accepted, %.0f slices/s\n",
		hepRes.TotalSlices, len(hepRes.Selected), hepRes.Throughput)

	// 5. The §IV check: identical accepted-slice ID sets.
	if !reflect.DeepEqual(fileRes.Selected, hepRes.Selected) {
		log.Fatal("MISMATCH: the two workflows accepted different slices")
	}
	fmt.Println("workflows agree: identical accepted-slice ID sets ✓")
}
