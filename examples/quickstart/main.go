// Quickstart: the paper's Listing 1 translated to Go.
//
// It deploys a small in-process HEPnOS service, connects a client, builds
// the dataset/run/subrun/event hierarchy, stores and loads a
// vector-of-Particle product, and iterates the subruns of a run.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/hep-on-hpc/hepnos-go/hepnos"
)

// Particle mirrors the example struct from Listing 1 of the paper. Any Go
// struct of numeric/string/slice/map fields serializes automatically — the
// analog of providing a Boost serialize() function.
type Particle struct {
	X, Y, Z float32
}

func main() {
	ctx := context.Background()

	// Deploy a service: 2 servers, each with event and product databases.
	// In production this is `hepnos-server` + a group file; in-process
	// deployment keeps the example self-contained.
	dep, err := hepnos.Deploy(hepnos.DeploySpec{
		Servers:            2,
		ProvidersPerServer: 4,
		NamePrefix:         "quickstart",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Shutdown()

	// auto datastore = hepnos::DataStore::connect("config.json");
	ds, err := hepnos.Connect(ctx, hepnos.ClientConfig{Group: dep.Group})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	// hepnos::DataSet ds = datastore["path/to/dataset"];
	dataset, err := ds.CreateDataSet(ctx, "path/to/dataset")
	if err != nil {
		log.Fatal(err)
	}

	// hepnos::Run run = ds[43];
	run, err := dataset.CreateRun(ctx, 43)
	if err != nil {
		log.Fatal(err)
	}

	// hepnos::SubRun subrun = run.createSubRun(56);
	subrun, err := run.CreateSubRun(ctx, 56)
	if err != nil {
		log.Fatal(err)
	}

	// hepnos::Event ev = subrun.createEvent(25);
	ev, err := subrun.CreateEvent(ctx, 25)
	if err != nil {
		log.Fatal(err)
	}

	// ev.store(vp1);
	vp1 := []Particle{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if err := ev.Store(ctx, "mylabel", vp1); err != nil {
		log.Fatal(err)
	}

	// ev.load(vp2);
	var vp2 []Particle
	if err := ev.Load(ctx, "mylabel", &vp2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d particles, loaded %d back: %v\n", len(vp1), len(vp2), vp2)

	// for(auto& subrun : run) { std::cout << subrun.number() << std::endl; }
	for n := uint64(50); n < 60; n += 3 {
		if _, err := run.CreateSubRun(ctx, n); err != nil {
			log.Fatal(err)
		}
	}
	subruns, err := run.SubRuns(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("subruns of run 43:")
	for _, n := range subruns {
		fmt.Printf(" %d", n)
	}
	fmt.Println()
}
