// QoS end-to-end fairness suite: the multi-tenant front door's acceptance
// test. A greedy batch-ingest tenant and an interactive read tenant share
// one QoS-gated service while a chaos storm perturbs the greedy tenant's
// wire. The contract under assertion:
//
//   - the interactive tenant completes 100% of its reads with bounded
//     tail latency, storm or not;
//   - every rejection the greedy tenant sees is a typed ShedError, never
//     a timeout;
//   - the server's metrics scrape exposes per-tenant admitted/shed
//     counters for both tenants.
//
// The storm schedule is a pure function of CHAOS_SEED, so any failure
// replays with CHAOS_SEED=<seed> go test -run TestQoSTwoTenantFairness.
package bench

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hep-on-hpc/hepnos-go/internal/asyncengine"
	"github.com/hep-on-hpc/hepnos-go/internal/bedrock"
	"github.com/hep-on-hpc/hepnos-go/internal/chaos"
	"github.com/hep-on-hpc/hepnos-go/internal/core"
	"github.com/hep-on-hpc/hepnos-go/internal/fabric"
	"github.com/hep-on-hpc/hepnos-go/internal/obs"
	"github.com/hep-on-hpc/hepnos-go/internal/qos"
	"github.com/hep-on-hpc/hepnos-go/internal/resilience"
)

// qosDeploy boots a single-server service with the front door enabled:
// the greedy tenant is rate-limited and down-weighted, the interactive
// tenant gets the larger WFQ share.
func qosDeploy(t *testing.T) *bedrock.Deployment {
	t.Helper()
	dep, err := bedrock.Deploy(bedrock.DeploySpec{
		Servers:             1,
		ProvidersPerServer:  2,
		EventDBsPerServer:   2,
		ProductDBsPerServer: 2,
		NamePrefix:          "qos-fair",
		QoS: &bedrock.QoSConfig{
			Enabled: true,
			Tenants: map[string]qos.TenantConfig{
				"greedy":      {Weight: 1, RatePerSec: 200, Burst: 20},
				"interactive": {Weight: 4},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Shutdown)
	return dep
}

// percentile returns the p-th percentile (0..1) of a latency sample.
func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// TestQoSTwoTenantFairness is the acceptance demo: greedy batch ingest
// and interactive reads run concurrently against one gated server.
func TestQoSTwoTenantFairness(t *testing.T) {
	ctx := context.Background()
	dep := qosDeploy(t)

	seed := chaos.SeedFromEnv(11)
	in := chaos.New(seed, &chaos.OverloadStorm{
		Period: 25, Len: 8,
		// Only the greedy tenant's wire storms; the interactive tenant's
		// traffic is clean so its latency bound measures the *gate's*
		// isolation, not the storm's mercy.
		TenantP: map[string]float64{"greedy": 0.4, "interactive": 0},
	})
	chaos.Report(t, in)

	pol := resilience.Default()
	pol.MaxRetries = 6
	pol.InitialBackoff = 100 * time.Microsecond
	pol.MaxBackoff = 2 * time.Millisecond

	greedy, err := core.Connect(ctx, core.ClientConfig{
		Group:      dep.Group,
		Tenant:     "greedy",
		NetSim:     &fabric.NetSim{Fault: in.ClientFault()},
		Resilience: pol,
		Async:      &asyncengine.Config{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer greedy.Close()

	reader, err := core.Connect(ctx, core.ClientConfig{
		Group:  dep.Group,
		Tenant: "interactive",
		NetSim: &fabric.NetSim{Fault: in.ClientFault()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	// Seed data for the reader before the contention phase: one dataset
	// with a handful of runs (created within the greedy tenant's burst).
	dataset, err := greedy.CreateDataSet(ctx, "fermilab/nova")
	if err != nil {
		t.Fatal(err)
	}
	seedBatch := greedy.NewWriteBatch()
	for r := uint64(0); r < 8; r++ {
		if _, err := seedBatch.CreateRun(ctx, dataset, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := seedBatch.Flush(ctx); err != nil {
		t.Fatalf("seeding flush: %v", err)
	}

	// Phase 2: contention. The greedy tenant hammers one-update batch
	// flushes well past its admitted rate while the interactive tenant
	// runs its read loop. Both run concurrently for a fixed op count.
	const (
		ingestOps = 400
		readOps   = 200
		readP99   = 2 * time.Second
	)
	var (
		wg          sync.WaitGroup
		shedCount   atomic.Int64
		okCount     atomic.Int64
		untypedErrs atomic.Int64
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingestOps; i++ {
			wb := greedy.NewWriteBatch()
			if _, err := wb.CreateRun(ctx, dataset, 1000+uint64(i)); err != nil {
				untypedErrs.Add(1)
				continue
			}
			switch ferr := wb.Flush(ctx); {
			case ferr == nil:
				okCount.Add(1)
			case qos.IsShed(ferr):
				shedCount.Add(1)
			default:
				untypedErrs.Add(1)
			}
		}
	}()

	rd, err := reader.OpenDataSet(ctx, "fermilab/nova")
	if err != nil {
		t.Fatal(err)
	}
	latencies := make([]time.Duration, 0, readOps)
	completed := 0
	for i := 0; i < readOps; i++ {
		start := time.Now()
		runs, rerr := rd.Runs(ctx)
		lat := time.Since(start)
		if rerr != nil {
			t.Fatalf("interactive read %d failed under contention: %v", i, rerr)
		}
		if len(runs) < 8 {
			t.Fatalf("interactive read %d lost seeded runs: got %d", i, len(runs))
		}
		latencies = append(latencies, lat)
		completed++
	}
	wg.Wait()

	// Completion contract: 100% of reads, zero untyped ingest failures.
	if completed != readOps {
		t.Fatalf("interactive tenant completed %d/%d reads", completed, readOps)
	}
	if n := untypedErrs.Load(); n != 0 {
		t.Fatalf("%d greedy failures were not typed sheds", n)
	}
	if shedCount.Load() == 0 {
		t.Fatal("greedy tenant was never shed; the workload did not exceed its rate")
	}
	if okCount.Load() == 0 {
		t.Fatal("greedy tenant never admitted; the bucket rate is miscalibrated")
	}

	// Latency contract: bounded tail for the interactive tenant while the
	// greedy tenant was being shed next door.
	p50 := percentile(latencies, 0.50)
	p99 := percentile(latencies, 0.99)
	if p99 > readP99 {
		t.Fatalf("interactive p99 %v exceeds bound %v (p50 %v)", p99, readP99, p50)
	}

	// Accounting contract: the server-side gate attributes admitted and
	// shed per tenant+class, and the counters survive a metrics scrape.
	gate := dep.Servers[0].Margo().Gate()
	if gate == nil {
		t.Fatal("QoS-enabled server has no gate")
	}
	cells := map[string]int64{}
	for _, c := range gate.Snapshot() {
		cells[c.Tenant+"/"+c.Class+"/admitted"] += c.Admitted
		cells[c.Tenant+"/"+c.Class+"/shed"] += c.Shed
	}
	if cells["interactive/interactive/shed"] != 0 {
		t.Fatalf("interactive tenant was shed: %v", cells)
	}
	if cells["interactive/interactive/admitted"] == 0 {
		t.Fatalf("interactive reads not attributed: %v", cells)
	}
	if cells["greedy/batch/shed"] != shedCount.Load() {
		t.Fatalf("server shed accounting %d != client-observed %d",
			cells["greedy/batch/shed"], shedCount.Load())
	}

	scrape := obs.PromText(dep.Servers[0].Registry().Snapshot())
	for _, want := range []string{
		obs.MetricQoSAdmitted, obs.MetricQoSShed,
		`tenant="greedy"`, `tenant="interactive"`,
		`class="batch"`, `class="interactive"`,
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("metrics scrape missing %q", want)
		}
	}

	t.Logf("fairness: reads %d/%d p50=%v p99=%v; ingest ok=%d shed=%d; drops=%d; cells=%v",
		completed, readOps, p50, p99, okCount.Load(), shedCount.Load(), in.Drops(), cells)
}

// TestQoSBackpressureThrottlesIngestPool closes the loop on the pushed
// signal: a client whose server gate reports queue pressure shrinks its
// own ingest pool concurrency, and recovers when the pressure clears.
func TestQoSBackpressureThrottlesIngestPool(t *testing.T) {
	ctx := context.Background()
	// A tiny queue with an early pressure knee so a modest backlog pushes
	// a hard signal.
	dep, err := bedrock.Deploy(bedrock.DeploySpec{
		Servers:             1,
		ProvidersPerServer:  1,
		EventDBsPerServer:   1,
		ProductDBsPerServer: 1,
		NamePrefix:          "qos-press",
		QoS: &bedrock.QoSConfig{
			Enabled:    true,
			MaxQueue:   8,
			PressureAt: 0.01,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Shutdown()

	ds, err := core.Connect(ctx, core.ClientConfig{Group: dep.Group, Tenant: "pusher"})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	gate := dep.Servers[0].Margo().Gate()
	if gate == nil {
		t.Fatal("no gate on QoS-enabled server")
	}
	// Build a standing server-side backlog (the e2e path drains too fast
	// to catch in flight): submit filler items without scheduling their
	// RunNext, as a saturated provider pool would. The fillers carry an
	// enormous WFQ cost so every real request's virtual finish time sorts
	// ahead of them — live RPCs keep flowing while the queue stays deep.
	for i := 0; i < 6; i++ {
		if err := gate.Submit(qos.Identity{Tenant: "filler", Class: qos.ClassInteractive}, 1<<30, func() {}); err != nil {
			t.Fatalf("backlog submit %d: %v", i, err)
		}
	}
	if gate.Pressure() == 0 {
		t.Fatal("backlogged gate reports zero pressure")
	}

	// Any RPC now returns the pressure level in its reply envelope; the
	// client's controller mirrors it onto the ingest pool.
	dataset, err := ds.CreateDataSet(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	_ = dataset
	deadline := time.Now().Add(5 * time.Second)
	for ds.PressureLevel() == 0 && time.Now().Before(deadline) {
		if _, err := ds.OpenDataSet(ctx, "d"); err != nil {
			t.Fatal(err)
		}
	}
	if ds.PressureLevel() == 0 {
		t.Fatal("client never observed the pushed pressure level")
	}
	eng := ds.Engine()
	throttleDeadline := time.Now().Add(5 * time.Second)
	for eng.PressureReserved(asyncengine.PoolIngest) == 0 && time.Now().Before(throttleDeadline) {
		time.Sleep(time.Millisecond)
	}
	if got := eng.PressureReserved(asyncengine.PoolIngest); got == 0 {
		t.Fatal("pushed pressure did not reserve ingest slots")
	} else {
		t.Logf("pressure %d reserved %d ingest slots", ds.PressureLevel(), got)
	}

	// Drain the backlog: pressure falls to zero, the client releases the
	// reservation on its next reply, and ingest capacity is restored.
	for gate.Depth() > 0 {
		gate.RunNext()
	}
	if gate.Pressure() != 0 {
		t.Fatalf("drained gate still reports pressure %d", gate.Pressure())
	}
	releaseDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(releaseDeadline) {
		if _, err := ds.OpenDataSet(ctx, "d"); err != nil {
			t.Fatal(err)
		}
		if ds.PressureLevel() == 0 && eng.PressureReserved(asyncengine.PoolIngest) == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if lvl, held := ds.PressureLevel(), eng.PressureReserved(asyncengine.PoolIngest); lvl != 0 || held != 0 {
		t.Fatalf("pressure did not clear: level=%d reserved=%d", lvl, held)
	}
}
